#!/usr/bin/env bash
# statsoff_gate.sh — proves the always-on stats instrumentation is cheap.
#
# Builds the root test binary twice — normal and `-tags statsoff` (histograms
# and the flight recorder compiled out to dead code) — then alternates
# executions of the parallel read-path benchmark between the two binaries so
# machine drift hits both equally, and compares the best (minimum) ns/op per
# benchmark. Fails when the instrumented build's best run is more than
# LIMIT_PCT percent slower than the statsoff build's.
#
# Single runs on a shared VM are ±5% noisy — far above the 3% limit — so the
# gate takes many short interleaved runs and lets the minimum converge on the
# true floor of each build.
#
# Environment knobs: COUNT (runs per build, default 15), BENCHTIME (per run,
# default 500ms), LIMIT_PCT (gate, default 3), BENCH (regexp, default
# BenchmarkSearchParallel/).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-15}"
BENCHTIME="${BENCHTIME:-500ms}"
LIMIT_PCT="${LIMIT_PCT:-3}"
BENCH="${BENCH:-BenchmarkSearchParallel/}"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "building instrumented and statsoff test binaries..."
go test -c -o "$workdir/on.test" .
go test -tags statsoff -c -o "$workdir/off.test" .

run_once() { # $1 = binary -> appends "name ns/op" lines to $2
  "$1" -test.run '^$' -test.bench "$BENCH" -test.cpu 4 \
    -test.benchtime "$BENCHTIME" |
    awk '$1 ~ /^Benchmark/ && $4 == "ns/op" { print $1, $3 }' >> "$2"
}

echo "interleaving $COUNT runs per build ($BENCHTIME each)..."
for i in $(seq "$COUNT"); do
  run_once "$workdir/off.test" "$workdir/off.ns"
  run_once "$workdir/on.test" "$workdir/on.ns"
done

# The estimate is the per-benchmark-name minimum: pooling sub-benchmarks
# with different baselines would let their mix decide the verdict, and on a
# noisy VM the minimum of interleaved runs is the estimator least polluted
# by scheduler preemption — both builds are filtered identically, so the
# comparison stays fair.
awk -v lim="$LIMIT_PCT" '
  FNR == 1 { f++ }
  f == 1 { if (!(($1 in off) && off[$1] <= $2)) off[$1] = $2 }
  f == 2 { if (!(($1 in on)  && on[$1]  <= $2)) on[$1]  = $2 }
  END {
    if (!length(off) || !length(on)) {
      print "no benchmark output" > "/dev/stderr"; exit 1
    }
    bad = 0
    for (name in off) {
      pct = (on[name] - off[name]) / off[name] * 100
      printf "%-50s statsoff=%g instrumented=%g  %+.2f%% (limit %s%%)\n",
             name, off[name], on[name], pct, lim
      if (pct > lim) bad = 1
    }
    exit bad
  }' "$workdir/off.ns" "$workdir/on.ns"
