// Benchmarks covering every artifact of the paper's presentation and the
// quantitative experiments of EXPERIMENTS.md:
//
//	Figure 3 (search)        -> BenchmarkSearchPoint, BenchmarkSearchRange
//	Figure 4 (insert)        -> BenchmarkInsert*, BenchmarkInsertUnique
//	Figures 1-2 (link proto) -> BenchmarkProtocol* (E8), BenchmarkSplitDetection
//	Figure 5/§7 (deletion)   -> BenchmarkDeleteAndGC (E12)
//	Table 1 (recovery)       -> BenchmarkRecovery (E6 cost), BenchmarkWALAppend
//	§4.3/§10.3 (predicates)  -> BenchmarkPredicateHybrid/Global (E9)
//	§10.1 (counter source)   -> BenchmarkNSNSource (ablation)
package gistdb_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	gistdb "repro"
	"repro/internal/baseline"
	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/rtree"
	"repro/internal/storage"
	"repro/internal/strtree"
	"repro/internal/wal"
)

// benchDB builds an in-memory engine preloaded with n sequential keys.
func benchDB(b *testing.B, n int, opts gistdb.Options) (*gistdb.DB, *gistdb.Index) {
	b.Helper()
	db, err := gistdb.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := db.CreateIndex("bench", btree.Ops{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tx, err := db.Begin()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("benchmark-record")); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	return db, idx
}

// BenchmarkInsert measures full transactional inserts (WAL, locks, BP
// propagation) — the Figure 4 pipeline end to end.
func BenchmarkInsert(b *testing.B) {
	db, idx := benchDB(b, 0, gistdb.Options{PoolPages: 4096})
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

// BenchmarkInsertParallel measures concurrent inserters on disjoint key
// ranges — the workload the link protocol exists for.
func BenchmarkInsertParallel(b *testing.B) {
	db, idx := benchDB(b, 0, gistdb.Options{PoolPages: 8192})
	defer db.Close()
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := ctr.Add(1)
			tx, err := db.Begin()
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := idx.Insert(tx, btree.EncodeKey(i), []byte("v")); err != nil {
				b.Error(err)
				tx.Abort()
				return
			}
			tx.Commit()
		}
	})
}

// BenchmarkInsertUnique measures §8's search-then-insert pipeline.
func BenchmarkInsertUnique(b *testing.B) {
	db, idx := benchDB(b, 0, gistdb.Options{PoolPages: 4096})
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin()
		if _, err := idx.InsertUnique(tx, btree.EncodeKey(int64(i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

// BenchmarkSearchPoint measures Figure 3 point lookups at both isolation
// levels.
func BenchmarkSearchPoint(b *testing.B) {
	for _, iso := range []struct {
		name string
		lvl  gistdb.Isolation
	}{{"ReadCommitted", gistdb.ReadCommitted}, {"RepeatableRead", gistdb.RepeatableRead}} {
		b.Run(iso.name, func(b *testing.B) {
			db, idx := benchDB(b, 10000, gistdb.Options{PoolPages: 4096})
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, _ := db.Begin()
				k := int64(i % 10000)
				if _, err := idx.Search(tx, btree.EncodeRange(k, k), iso.lvl); err != nil {
					b.Fatal(err)
				}
				tx.Commit()
			}
		})
	}
}

// BenchmarkSearchRange measures range scans of increasing selectivity.
func BenchmarkSearchRange(b *testing.B) {
	db, idx := benchDB(b, 10000, gistdb.Options{PoolPages: 4096})
	defer db.Close()
	for _, width := range []int64{10, 100, 1000} {
		b.Run(fmt.Sprintf("width%d", width), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, _ := db.Begin()
				lo := int64(i) % (10000 - width)
				rs, err := idx.Search(tx, btree.EncodeRange(lo, lo+width), gistdb.ReadCommitted)
				if err != nil {
					b.Fatal(err)
				}
				if len(rs) == 0 {
					b.Fatal("empty range")
				}
				tx.Commit()
			}
		})
	}
}

// BenchmarkRTreeWindow measures spatial window queries — the
// multidimensional case motivating the whole design.
func BenchmarkRTreeWindow(b *testing.B) {
	db, err := gistdb.Open(gistdb.Options{PoolPages: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("pts", rtree.Ops{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	tx, _ := db.Begin()
	for i := 0; i < 10000; i++ {
		if _, err := idx.Insert(tx, rtree.EncodePoint(rng.Float64()*1000, rng.Float64()*1000), []byte("p")); err != nil {
			b.Fatal(err)
		}
	}
	tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin()
		x, y := float64(i%900), float64((i*7)%900)
		w := rtree.Rect{XMin: x, YMin: y, XMax: x + 50, YMax: y + 50}
		if _, err := idx.Search(tx, rtree.EncodeRect(w), gistdb.ReadCommitted); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

// BenchmarkProtocol is experiment E8 as a bench: the three concurrency
// protocols under parallel load with a pool smaller than the tree.
func BenchmarkProtocol(b *testing.B) {
	for _, proto := range []baseline.Protocol{baseline.Coarse, baseline.Coupling, baseline.Link} {
		for _, mix := range []struct {
			name     string
			readFrac int
		}{{"read90", 90}, {"read50", 50}} {
			b.Run(fmt.Sprintf("%s/%s", proto, mix.name), func(b *testing.B) {
				pool := buffer.New(storage.NewMemDisk(), 64, nil)
				ix, err := baseline.New(pool, btree.Ops{}, proto, 64)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < 20000; i++ {
					if err := ix.Insert(btree.EncodeKey(int64(i*2)), page.RID{Page: 1, Slot: uint16(i % 60000)}); err != nil {
						b.Fatal(err)
					}
				}
				var ctr atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(ctr.Add(1)))
					for pb.Next() {
						k := int64(rng.Intn(40000))
						if rng.Intn(100) < mix.readFrac {
							if _, err := ix.Search(btree.EncodeRange(k, k+20)); err != nil {
								b.Error(err)
								return
							}
						} else if err := ix.Insert(btree.EncodeKey(k*2+1), page.RID{Page: 2, Slot: uint16(k % 60000)}); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkSplitDetection measures the pure overhead of the NSN check plus
// occasional rightlink chases on a churning tree.
func BenchmarkSplitDetection(b *testing.B) {
	pool := buffer.New(storage.NewMemDisk(), 4096, nil)
	ix, err := baseline.New(pool, btree.Ops{}, baseline.Link, 16)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		ix.Insert(btree.EncodeKey(int64(i)), page.RID{Page: 1, Slot: uint16(i % 60000)})
	}
	stop := make(chan struct{})
	go func() { // background splitter
		k := int64(10000)
		for {
			select {
			case <-stop:
				return
			default:
				ix.Insert(btree.EncodeKey(k), page.RID{Page: 3, Slot: uint16(k % 60000)})
				k++
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(btree.EncodeRange(int64(i%9000), int64(i%9000+30))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	b.ReportMetric(float64(ix.Chases.Load()), "chases")
}

// BenchmarkDeleteAndGC is E12: the logical-delete + garbage-collection
// pipeline of §7.
func BenchmarkDeleteAndGC(b *testing.B) {
	db, idx := benchDB(b, b.N+1, gistdb.Options{PoolPages: 8192})
	defer db.Close()
	tx, _ := db.Begin()
	rs, err := idx.Search(tx, btree.EncodeRange(0, int64(b.N)), gistdb.ReadCommitted)
	if err != nil {
		b.Fatal(err)
	}
	tx.Commit()
	b.ResetTimer()
	for i := 0; i < b.N && i < len(rs); i++ {
		tx, _ := db.Begin()
		if err := idx.Delete(tx, rs[i].Key, rs[i].RID); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
	gc, _ := db.Begin()
	if err := idx.GC(gc); err != nil {
		b.Fatal(err)
	}
	gc.Commit()
}

// BenchmarkRecovery measures restart time as a function of log length —
// the operational cost of the Table 1 protocol.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("txns%d", n), func(b *testing.B) {
			db, idx := benchDB(b, n, gistdb.Options{PoolPages: 8192})
			// One loser so undo has work too.
			loser, _ := db.Begin()
			idx.Insert(loser, btree.EncodeKey(int64(n+5)), []byte("loser"))
			db.WAL().FlushAll()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db2, err := db.SimulateCrash()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db2.OpenIndex("bench", btree.Ops{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredicateHybrid / Global are E9: the cost of the insert-time
// predicate conflict check under the two disciplines.
func BenchmarkPredicateHybrid(b *testing.B) { benchPredicates(b, false) }

// BenchmarkPredicateGlobal is the tree-global strawman of §4.2.
func BenchmarkPredicateGlobal(b *testing.B) { benchPredicates(b, true) }

func benchPredicates(b *testing.B, global bool) {
	pm := predicate.NewManager()
	ops := btree.Ops{}
	const scanners, leaves = 500, 64
	for s := 0; s < scanners; s++ {
		lo := int64(s * 100)
		p := pm.New(page.TxnID(s+1), predicate.Search, btree.EncodeRange(lo, lo+99))
		pm.Attach(p, 1, nil)
		pm.Attach(p, page.PageID(2+s%leaves), nil)
	}
	key := btree.EncodeKey(50)
	conflict := func(p *predicate.Predicate) bool { return ops.Consistent(key, p.Data) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if global {
			pm.ConflictingGlobal(9999999, conflict)
		} else {
			pm.Conflicting(page.PageID(2+i%leaves), 9999999, conflict)
		}
	}
}

// BenchmarkNSNSource is the §10.1 ablation: global-counter reads versus
// parent-LSN memorization on the descent path.
func BenchmarkNSNSource(b *testing.B) {
	for _, opt := range []struct {
		name string
		on   bool
	}{{"globalCounter", false}, {"parentLSN", true}} {
		b.Run(opt.name, func(b *testing.B) {
			db, idx := benchDB(b, 10000, gistdb.Options{PoolPages: 4096, ParentLSNOpt: opt.on})
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, _ := db.Begin()
				k := int64(i % 10000)
				if _, err := idx.Search(tx, btree.EncodeRange(k, k+20), gistdb.ReadCommitted); err != nil {
					b.Fatal(err)
				}
				tx.Commit()
			}
		})
	}
}

// BenchmarkWALAppend measures the log manager's append path (every tree
// update rides on it).
func BenchmarkWALAppend(b *testing.B) {
	db, idx := benchDB(b, 0, gistdb.Options{PoolPages: 1024})
	defer db.Close()
	_ = idx
	log := db.WAL()
	body := []byte("benchmark-entry-body")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log.Append(&wal.Record{Type: wal.RecAddLeafEntry, Txn: 1, Pg: 2, Body: body})
	}
}

// BenchmarkCursorNext measures the per-entry cost of incremental scans
// (§10.2's cursors) against the batch Search path.
func BenchmarkCursorNext(b *testing.B) {
	db, idx := benchDB(b, 10000, gistdb.Options{PoolPages: 4096})
	defer db.Close()
	tx, _ := db.Begin()
	defer tx.Commit()
	cur, err := idx.OpenCursor(tx, btree.EncodeRange(0, 1<<40), gistdb.ReadCommitted)
	if err != nil {
		b.Fatal(err)
	}
	defer cur.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := cur.Next()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.StopTimer()
			cur.Close()
			c2, err := idx.OpenCursor(tx, btree.EncodeRange(0, 1<<40), gistdb.ReadCommitted)
			if err != nil {
				b.Fatal(err)
			}
			cur = c2
			b.StartTimer()
		}
	}
}

// BenchmarkStringKeys measures the variable-length-predicate extension:
// inserts whose BP unions grow encoded sizes, and prefix scans.
func BenchmarkStringKeys(b *testing.B) {
	db, err := gistdb.Open(gistdb.Options{PoolPages: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("str", strtree.Ops{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tx, _ := db.Begin()
			key := strtree.EncodeKey([]byte(fmt.Sprintf("key-%09d-%x", i, i*2654435761)))
			if _, err := idx.Insert(tx, key, []byte("v")); err != nil {
				b.Fatal(err)
			}
			tx.Commit()
		}
	})
	b.Run("prefixScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tx, _ := db.Begin()
			if _, err := idx.Search(tx, strtree.Prefix([]byte("key-0000")), gistdb.ReadCommitted); err != nil {
				b.Fatal(err)
			}
			tx.Commit()
		}
	})
}

// optModes drives the optimistic-vs-pessimistic sub-benchmarks of the
// read-scaling suite (E19).
var optModes = []struct {
	name string
	mode gistdb.OptimisticMode
}{
	{"Optimistic", gistdb.OptimisticOn},
	{"Pessimistic", gistdb.OptimisticOff},
}

// BenchmarkSearchParallel measures concurrent range searches over a static
// tree — the read-heavy serving workload the optimistic path targets. Run
// with -cpu 1,4,16 to see the latch-handoff wall move (E19).
func BenchmarkSearchParallel(b *testing.B) {
	for _, m := range optModes {
		b.Run(m.name, func(b *testing.B) {
			db, idx := benchDB(b, 10000, gistdb.Options{PoolPages: 4096, OptimisticReads: m.mode})
			defer db.Close()
			var ctr atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(ctr.Add(1)))
				for pb.Next() {
					lo := int64(rng.Intn(10000 - 20))
					tx, err := db.Begin()
					if err != nil {
						b.Error(err)
						return
					}
					rs, err := idx.Search(tx, btree.EncodeRange(lo, lo+19), gistdb.ReadCommitted)
					if err != nil {
						b.Error(err)
						tx.Abort()
						return
					}
					if len(rs) != 20 {
						b.Errorf("search returned %d results, want 20", len(rs))
					}
					tx.Commit()
				}
			})
		})
	}
}

// BenchmarkCursorScanParallel measures concurrent incremental scans (open,
// drain ~100 entries, close) — the cursor flavor of the read-scaling suite.
func BenchmarkCursorScanParallel(b *testing.B) {
	for _, m := range optModes {
		b.Run(m.name, func(b *testing.B) {
			db, idx := benchDB(b, 10000, gistdb.Options{PoolPages: 4096, OptimisticReads: m.mode})
			defer db.Close()
			var ctr atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(ctr.Add(1)))
				for pb.Next() {
					lo := int64(rng.Intn(10000 - 100))
					tx, err := db.Begin()
					if err != nil {
						b.Error(err)
						return
					}
					c, err := idx.OpenCursor(tx, btree.EncodeRange(lo, lo+99), gistdb.ReadCommitted)
					if err != nil {
						b.Error(err)
						tx.Abort()
						return
					}
					n := 0
					for {
						_, ok, err := c.Next()
						if err != nil {
							b.Error(err)
							break
						}
						if !ok {
							break
						}
						n++
					}
					c.Close()
					if n != 100 {
						b.Errorf("cursor drained %d entries, want 100", n)
					}
					tx.Commit()
				}
			})
		})
	}
}
