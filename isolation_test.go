// Isolation-conformance suite: executable checks of the paper's Degree 2
// (ReadCommitted) and Degree 3 (RepeatableRead, hybrid record + predicate
// locking) guarantees through the public facade, plus the replica's
// committed-reads-only contract. Everything here must stay green under
// -race; conflicting operations may be aborted as deadlock victims (that is
// the protocol resolving reader/inserter cycles, §10.3), so the tests retry
// on ErrAborted — the guarantees apply to transactions that commit.
package gistdb_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	gistdb "repro"
	"repro/internal/btree"
)

// isoAborted reports whether err is a serialization failure (deadlock-victim
// abort) that a conformance loop should retry rather than fail on.
func isoAborted(err error) bool {
	return errors.Is(err, gistdb.ErrAborted) || errors.Is(err, gistdb.ErrLockDeadlock)
}

func isoKeys(hits []gistdb.SearchResult) map[int64]bool {
	out := make(map[int64]bool, len(hits))
	for _, h := range hits {
		out[btree.DecodeKey(h.Key)] = true
	}
	return out
}

// TestIsolationNoDirtyReads drives the deterministic dirty-read scenario:
// a reader searching a range with an in-flight uncommitted insert blocks on
// the record lock (it cannot return the dirty entry), and after the writer
// aborts the entry is gone from its result. Committed data then appears.
func TestIsolationNoDirtyReads(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(i), []byte("seed")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Uncommitted insert of key 50.
	writer, _ := db.Begin()
	if _, err := idx.Insert(writer, btree.EncodeKey(50), []byte("dirty")); err != nil {
		t.Fatal(err)
	}

	// A reader covering key 50 must not return it. Degree 2 blocks on the
	// writer's record lock, so run the search in a goroutine and verify it
	// has not produced a result while the writer is still in flight.
	type res struct {
		keys map[int64]bool
		err  error
	}
	done := make(chan res, 1)
	go func() {
		tx, err := db.Begin()
		if err != nil {
			done <- res{err: err}
			return
		}
		hits, err := idx.Search(tx, btree.EncodeRange(0, 100), gistdb.ReadCommitted)
		tx.Commit()
		done <- res{keys: isoKeys(hits), err: err}
	}()
	select {
	case r := <-done:
		// The search may legitimately finish before observing the dirty
		// entry only if it excludes it; seeing key 50 is a dirty read.
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.keys[50] {
			t.Fatal("dirty read: uncommitted key 50 returned")
		}
	case <-time.After(200 * time.Millisecond):
		// Blocked on the writer, as Degree 2 prescribes.
	}

	if err := writer.Abort(); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.keys[50] {
			t.Fatal("aborted key 50 visible after writer abort")
		}
		if len(r.keys) != 10 {
			t.Fatalf("reader saw %d keys, want the 10 seeds", len(r.keys))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reader still blocked after writer abort")
	}

	// Committed data is visible to the next reader.
	w2, _ := db.Begin()
	if _, err := idx.Insert(w2, btree.EncodeKey(50), []byte("clean")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	hits, err := idx.Search(tx, btree.EncodeRange(0, 100), gistdb.ReadCommitted)
	tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if got := isoKeys(hits); !got[50] || len(got) != 11 {
		t.Fatalf("committed key 50 not visible: %v", got)
	}
}

// TestIsolationBatchAtomicity hammers the no-dirty-reads guarantee under
// concurrency: a writer commits or aborts batches of exactly batchSize keys,
// and RepeatableRead readers must only ever observe whole committed batches
// — a result with count % batchSize != 0 means a reader caught a batch half
// done, and any key from the aborted keyspace is a dirty read outright.
func TestIsolationBatchAtomicity(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	const (
		batchSize  = 5
		batches    = 30
		abortBase  = int64(1 << 20) // aborted batches write only here
		commitBase = int64(0)
	)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: alternate committed and aborted batches
		defer wg.Done()
		defer close(stop)
		for b := 0; b < batches; b++ {
			abortIt := b%2 == 1
			base := commitBase
			if abortIt {
				base = abortBase
			}
			for { // retry the whole batch if chosen as deadlock victim
				tx, err := db.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				ok := true
				for k := 0; k < batchSize; k++ {
					key := base + int64(b*batchSize+k)
					if _, err := idx.Insert(tx, btree.EncodeKey(key), []byte("b")); err != nil {
						tx.Abort()
						ok = false
						if !isoAborted(err) {
							t.Errorf("insert: %v", err)
							return
						}
						break
					}
				}
				if !ok {
					continue
				}
				if abortIt {
					tx.Abort()
					break
				}
				if err := tx.Commit(); err != nil {
					if isoAborted(err) {
						continue
					}
					t.Error(err)
					return
				}
				break
			}
		}
	}()

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() { // readers: whole committed batches only
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := db.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				hits, err := idx.Search(tx, btree.EncodeRange(0, 1<<22), gistdb.RepeatableRead)
				if err != nil {
					tx.Abort()
					if isoAborted(err) {
						continue // deadlock victim; the guarantee is for committed readers
					}
					t.Errorf("search: %v", err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				keys := isoKeys(hits)
				if len(keys)%batchSize != 0 {
					t.Errorf("reader saw %d keys: partial batch visible", len(keys))
					return
				}
				for k := range keys {
					if k >= abortBase {
						t.Errorf("dirty read: aborted-batch key %d visible", k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Final state: exactly the committed batches.
	tx, _ := db.Begin()
	hits, err := idx.Search(tx, btree.EncodeRange(0, 1<<22), gistdb.ReadCommitted)
	tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	want := (batches + 1) / 2 * batchSize
	if len(hits) != want {
		t.Fatalf("final count = %d, want %d", len(hits), want)
	}
}

// TestIsolationRepeatableRead runs RepeatableRead transactions that search
// the same range twice while a churn writer inserts into that range. For
// every reader that completes both searches and commits, the two result
// sets must be identical — the paper's Degree 3. Readers or the writer may
// be aborted as deadlock victims (searcher blocked on an inserter's record
// lock while the inserter blocks on the searcher's predicate); those rounds
// retry.
func TestIsolationRepeatableRead(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(i), []byte("seed")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn: single-key inserts inside the read range
		defer wg.Done()
		next := int64(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx, err := db.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := idx.Insert(tx, btree.EncodeKey(next), []byte("churn")); err != nil {
				tx.Abort()
				if !isoAborted(err) {
					t.Errorf("churn insert: %v", err)
					return
				}
				continue
			}
			if err := tx.Commit(); err != nil {
				if !isoAborted(err) {
					t.Error(err)
					return
				}
				continue
			}
			next++
		}
	}()

	const wantCommitted = 15
	committed := 0
	for committed < wantCommitted {
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		q := btree.EncodeRange(0, 1<<20)
		first, err := idx.Search(tx, q, gistdb.RepeatableRead)
		if err != nil {
			tx.Abort()
			if isoAborted(err) {
				continue
			}
			t.Fatal(err)
		}
		second, err := idx.Search(tx, q, gistdb.RepeatableRead)
		if err != nil {
			tx.Abort()
			if isoAborted(err) {
				continue
			}
			t.Fatal(err)
		}
		a, b := isoKeys(first), isoKeys(second)
		if len(a) != len(b) {
			t.Fatalf("non-repeatable read: %d then %d keys", len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("non-repeatable read: key %d vanished between searches", k)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		committed++
	}
	close(stop)
	wg.Wait()
}

// TestIsolationPhantomProtection pins the predicate-locking mechanism: a
// RepeatableRead search attaches its predicate to every visited node, and a
// conflicting insert blocks behind it until the reader finishes, while a
// non-conflicting insert proceeds immediately.
func TestIsolationPhantomProtection(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(i), []byte("seed")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	reader, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Search(reader, btree.EncodeRange(0, 100), gistdb.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 10 {
		t.Fatalf("seed search = %d hits, want 10", len(hits))
	}

	// Conflicting insert (key 50 is inside [0,100]): must block until the
	// reader commits.
	conflicting := make(chan error, 1)
	go func() {
		tx, err := db.Begin()
		if err != nil {
			conflicting <- err
			return
		}
		if _, err := idx.Insert(tx, btree.EncodeKey(50), []byte("phantom")); err != nil {
			tx.Abort()
			conflicting <- err
			return
		}
		conflicting <- tx.Commit()
	}()

	// Non-conflicting insert (key 5000 is outside the predicate): must not
	// be delayed by the reader.
	free, _ := db.Begin()
	if _, err := idx.Insert(free, btree.EncodeKey(5000), []byte("free")); err != nil {
		t.Fatalf("non-conflicting insert blocked or failed: %v", err)
	}
	if err := free.Commit(); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-conflicting:
		t.Fatalf("conflicting insert completed while reader active (err=%v)", err)
	case <-time.After(200 * time.Millisecond):
		// Still blocked: phantom protection holding.
	}

	// The reader's repeat search must not see the phantom key 50 (its entry
	// may be physically present, but the record lock resolves the race; if
	// the reader is picked as deadlock victim the test scenario cannot
	// happen deterministically, so treat it as a hard failure — the insert
	// blocked first, so the reader never waits on it here).
	again, err := idx.Search(reader, btree.EncodeRange(0, 40), gistdb.RepeatableRead)
	if err != nil {
		t.Fatalf("repeat search: %v", err)
	}
	if len(again) != 10 {
		t.Fatalf("repeat search = %d hits, want 10", len(again))
	}

	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-conflicting:
		if err != nil {
			t.Fatalf("conflicting insert after reader commit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("conflicting insert still blocked after reader commit")
	}

	tx, _ := db.Begin()
	final, err := idx.Search(tx, btree.EncodeRange(0, 10000), gistdb.ReadCommitted)
	tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if got := isoKeys(final); !got[50] || !got[5000] || len(got) != 12 {
		t.Fatalf("final keys = %v, want 10 seeds + 50 + 5000", got)
	}
}

// TestIsolationReplicaCommittedBatches is the replica variant: the primary
// commits insert-only batches of exactly batchSize keys, and every replica
// snapshot must contain a whole number of batches — the replica's redo
// machinery must never expose a half-applied commit.
func TestIsolationReplicaCommittedBatches(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := gistdb.OpenReplica(gistdb.Options{MaxEntries: 8}, pipeDial(db))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitApplied(t, db, rep) // index root must exist before the replica opens it
	rix, err := rep.OpenIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}

	const (
		batchSize = 4
		batches   = 25
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for b := 0; b < batches; b++ {
			tx, err := db.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			for k := 0; k < batchSize; k++ {
				key := int64(b*batchSize + k)
				if _, err := idx.Insert(tx, btree.EncodeKey(key), []byte("r")); err != nil {
					t.Errorf("insert: %v", err)
					tx.Abort()
					return
				}
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for {
		select {
		case <-stop:
		default:
			got := searchAll(t, rep, rix)
			if len(got)%batchSize != 0 {
				t.Fatalf("replica exposed partial batch: %d keys", len(got))
			}
			continue
		}
		break
	}
	wg.Wait()

	waitApplied(t, db, rep)
	got := searchAll(t, rep, rix)
	if len(got) != batches*batchSize {
		t.Fatalf("replica converged to %d keys, want %d", len(got), batches*batchSize)
	}
	for i := int64(0); i < batches*batchSize; i++ {
		if _, ok := got[i]; !ok {
			t.Fatalf("replica missing key %d", i)
		}
	}
}
