package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/recovery"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// restartCell is one restart timing measurement: the same crash state
// recovered with a given worker fan-out (minimum of three trials).
type restartCell struct {
	Workers      int     `json:"workers"`
	TotalMillis  float64 `json:"total_ms"`
	ScanMillis   float64 `json:"scan_ms"`
	RedoMillis   float64 `json:"redo_ms"`
	Speedup      float64 `json:"speedup_vs_serial"`
	Analyzed     int     `json:"analyzed"`
	Redone       int     `json:"redone"`
	QueuePages   int64   `json:"queue_pages"`
	PrefetchHits int64   `json:"prefetch_hits"`
	Digest       string  `json:"digest"`
}

// expRestart measures time-to-recover: it builds a large crash state once —
// half the keys durable on disk, half alive only in the log, everything
// committed so the recovered images are byte-comparable across fan-outs —
// then restarts clones of it at each -threads worker count under -iolat
// simulated I/O latency. Self-checking: every restart must produce the
// byte-identical recovered state (digest over all page images + final LSN),
// and at workers > 1 restart must not be slower than serial.
func expRestart() {
	baseLog, baseDisk, anchor, cfg := buildRestartState()

	counts := []int{1}
	for _, w := range parseThreads() {
		if w > 1 {
			counts = append(counts, w)
		}
	}

	var cells []restartCell
	for _, w := range counts {
		var best restartCell
		for trial := 0; trial < 3; trial++ {
			c := restartTrial(baseLog, baseDisk, anchor, cfg, w)
			if trial == 0 || c.TotalMillis < best.TotalMillis {
				best = c
			}
		}
		if len(cells) > 0 {
			best.Speedup = cells[0].TotalMillis / best.TotalMillis
		} else {
			best.Speedup = 1
		}
		cells = append(cells, best)
	}

	if *jsonFlag {
		out, err := json.MarshalIndent(map[string]any{"cells": cells}, "", "  ")
		must(err)
		fmt.Println(string(out))
	} else {
		fmt.Printf("%-8s %10s %10s %10s %9s %9s %9s %11s %10s  %s\n",
			"workers", "total_ms", "scan_ms", "redo_ms", "speedup", "analyzed", "redone", "queue_pages", "prefetch", "digest")
		for _, c := range cells {
			fmt.Printf("%-8d %10.1f %10.1f %10.1f %8.2fx %9d %9d %11d %10d  %s\n",
				c.Workers, c.TotalMillis, c.ScanMillis, c.RedoMillis, c.Speedup,
				c.Analyzed, c.Redone, c.QueuePages, c.PrefetchHits, c.Digest[:12])
		}
	}

	// Acceptance: byte-identical recovered state at every fan-out, and no
	// parallel cell slower than serial (small tolerance for timer noise).
	var bad []string
	serial := cells[0]
	if serial.Redone == 0 {
		bad = append(bad, "serial restart redid nothing; the crash state is too small to measure")
	}
	for _, c := range cells[1:] {
		if c.Digest != serial.Digest {
			bad = append(bad, fmt.Sprintf("workers=%d recovered state digest %s != serial %s",
				c.Workers, c.Digest[:12], serial.Digest[:12]))
		}
		if c.TotalMillis > serial.TotalMillis*1.20 {
			bad = append(bad, fmt.Sprintf("workers=%d restart took %.1fms, slower than serial %.1fms",
				c.Workers, c.TotalMillis, serial.TotalMillis))
		}
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "gistbench: restart bench FAILED: %s\n", strings.Join(bad, "; "))
		os.Exit(1)
	}
	if !*jsonFlag {
		fmt.Println("RESULT: parallel restart recovered the identical state at least as fast as serial")
	}
}

// buildRestartState constructs the crash state the cells all recover from:
// a committed B-tree + heap workload over -keys keys where the first half
// was flushed and synced (durable base images) and the second half lives
// only in the log (a large dirty page table for redo to rebuild).
func buildRestartState() (*wal.Log, *storage.MemDisk, page.PageID, gist.Config) {
	disk := storage.NewMemDisk()
	log := wal.NewMemLog()
	pool := buffer.New(disk, 8192, log)
	tm := txn.NewManager(log, lock.NewManager(), predicate.NewManager())
	hp := heap.New(pool)
	hp.RegisterUndo(tm)
	cfg := gist.Config{Ops: btree.Ops{}, MaxEntries: 32}
	tree, err := gist.Create(pool, tm, cfg)
	must(err)
	insert := func(lo, hi int) {
		for k := lo; k < hi; {
			tx, err := tm.Begin()
			must(err)
			for j := 0; j < 50 && k < hi; j++ {
				rid, err := hp.Insert(tx, []byte(fmt.Sprintf("rec-%d", k)))
				must(err)
				must(tree.Insert(tx, btree.EncodeKey(int64(k)), rid))
				k++
			}
			must(tx.Commit())
			tree.TxnFinished(tx.ID())
		}
	}
	n := *keysFlag
	insert(0, n/2)
	must(pool.FlushAll())
	must(disk.Sync())
	insert(n/2, n)
	must(log.FlushAll())
	return log, disk, tree.Anchor(), cfg
}

// restartTrial recovers one clone of the crash state with the given worker
// fan-out, under -iolat per-page simulated latency.
func restartTrial(baseLog *wal.Log, baseDisk *storage.MemDisk, anchor page.PageID, cfg gist.Config, workers int) restartCell {
	disk := baseDisk.Snapshot()
	slow := storage.NewSlowDisk(disk, *iolatFlag)
	log := baseLog.TruncatedCopy(baseLog.LastLSN())
	pool := buffer.New(slow, 8192, log)
	tm := txn.NewManager(log, lock.NewManager(), predicate.NewManager())
	rec := &recovery.Recovery{Log: log, Pool: pool, Disk: slow, TM: tm, Workers: workers}
	t0 := time.Now()
	st, err := rec.Run(func() error {
		_, oerr := gist.Open(pool, tm, cfg, anchor)
		return oerr
	})
	must(err)
	elapsed := time.Since(t0)
	m := stats.Merged(rec.Metrics())
	return restartCell{
		Workers:      workers,
		TotalMillis:  float64(elapsed.Microseconds()) / 1e3,
		ScanMillis:   float64(m["recovery.scan_nanos"]) / 1e6,
		RedoMillis:   float64(m["recovery.redo_nanos"]) / 1e6,
		Analyzed:     st.Analyzed,
		Redone:       st.Redone,
		QueuePages:   m["recovery.redo_queue_pages"],
		PrefetchHits: m["recovery.prefetch_hits"],
		Digest:       restartDigest(disk, log),
	}
}

// restartDigest hashes the complete recovered durable state: every live
// page id and image in id order, plus the final LSN.
func restartDigest(d *storage.MemDisk, l *wal.Log) string {
	h := sha256.New()
	buf := make([]byte, page.Size)
	for _, id := range d.PageIDs() {
		if err := d.ReadPage(id, buf); err != nil {
			must(err)
		}
		fmt.Fprintf(h, "%d:", id)
		h.Write(buf)
	}
	fmt.Fprintf(h, "lsn%d", l.LastLSN())
	return fmt.Sprintf("%x", h.Sum(nil))
}
