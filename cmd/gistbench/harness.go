package main

import (
	"fmt"

	gistdb "repro"
	"repro/internal/btree"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/wal"
)

func gistdbTxn(s int) page.TxnID { return page.TxnID(s + 1) }
func pageID(n int) page.PageID   { return page.PageID(n) }

var _ = predicate.Search // (documented dependency of expPredicates)

// crashAfterFirst crashes the in-memory database right after the first
// occurrence of the given record type following the bootstrap transaction,
// recovers, and returns the recovered database along with the number of
// index keys that the surviving log says should exist (committed inserts
// minus committed deletes).
func crashAfterFirst(db *gistdb.DB, typ wal.RecType) (*gistdb.DB, int, error) {
	// Place the crash point only after the index fully exists: the
	// bootstrap, tree-creation and catalog transactions contribute the
	// first three End records (cutting inside creation would just mean
	// the index was never created — recovery handles that too, but it is
	// not the scenario this matrix measures).
	ends := 0
	var cut page.LSN
	db.WAL().Scan(1, func(r *wal.Record) bool {
		if ends < 3 {
			if r.Type == wal.RecEnd {
				ends++
			}
			return true
		}
		if r.Type == typ {
			cut = r.LSN
			return false
		}
		return true
	})
	if cut == 0 {
		return nil, 0, fmt.Errorf("workload produced no %v record", typ)
	}
	db2, err := db.SimulateCrashAtLSN(cut)
	if err != nil {
		return nil, 0, err
	}
	// Expected keys from the survivor log.
	committed := make(map[page.TxnID]bool)
	inserted := make(map[page.TxnID][]int64)
	deleted := make(map[page.TxnID][]int64)
	db2.WAL().Scan(1, func(r *wal.Record) bool {
		switch r.Type {
		case wal.RecCommit:
			committed[r.Txn] = true
		case wal.RecAddLeafEntry:
			if e, err := page.DecodeEntry(r.Body, true); err == nil {
				inserted[r.Txn] = append(inserted[r.Txn], btree.DecodeKey(e.Pred))
			}
		case wal.RecMarkLeafEntry:
			if e, err := page.DecodeEntry(r.Body, true); err == nil {
				deleted[r.Txn] = append(deleted[r.Txn], btree.DecodeKey(e.Pred))
			}
		}
		return true
	})
	want := make(map[int64]bool)
	for txid, keys := range inserted {
		if committed[txid] {
			for _, k := range keys {
				want[k] = true
			}
		}
	}
	for txid, keys := range deleted {
		if committed[txid] {
			for _, k := range keys {
				delete(want, k)
			}
		}
	}
	return db2, len(want), nil
}
