package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	gistdb "repro"
	"repro/internal/btree"
)

// replCell is the repl soak's measurement: a primary under concurrent write
// churn ships its log over TCP loopback to a live replica serving reads,
// with the apply lag sampled throughout; the run quiesces twice for an
// exact primary/replica result-set comparison and ends with a promotion
// that must carry the full committed state and accept new writes.
type replCell struct {
	Writers        int     `json:"writers"`
	Readers        int     `json:"readers"`
	WriterOps      int64   `json:"writer_ops"`
	ReaderOps      int64   `json:"reader_ops"`
	WriterOpsSec   float64 `json:"writer_ops_per_sec"`
	ReaderOpsSec   float64 `json:"reader_ops_per_sec"`
	AppliedLSN     int64   `json:"applied_lsn"`
	MaxLagLSN      int64   `json:"max_lag_lsn"`
	AvgLagLSN      float64 `json:"avg_lag_lsn"`
	LagSamples     int64   `json:"lag_samples"`
	ApplyBatches   int64   `json:"apply_batches"`
	ApplyRecords   int64   `json:"apply_records"`
	ShipBatches    int64   `json:"ship_batches"`
	ShipBytes      int64   `json:"ship_bytes"`
	Reconnects     int64   `json:"reconnects"`
	Quiesces       int     `json:"quiesces"`
	Entries        int     `json:"entries_at_promote"`
	PromoteEntries int     `json:"entries_after_promote"`
}

func expRepl() {
	cell, bad := replSoak()

	if *jsonFlag {
		out, err := json.MarshalIndent(cell, "", "  ")
		must(err)
		fmt.Println(string(out))
	} else {
		fmt.Printf("%-24s %12d\n", "writer ops", cell.WriterOps)
		fmt.Printf("%-24s %12d\n", "reader ops (replica)", cell.ReaderOps)
		fmt.Printf("%-24s %12.0f\n", "writer ops/sec", cell.WriterOpsSec)
		fmt.Printf("%-24s %12.0f\n", "reader ops/sec", cell.ReaderOpsSec)
		fmt.Printf("%-24s %12d\n", "applied LSN", cell.AppliedLSN)
		fmt.Printf("%-24s %12d\n", "max apply lag (LSNs)", cell.MaxLagLSN)
		fmt.Printf("%-24s %12.1f\n", "avg apply lag (LSNs)", cell.AvgLagLSN)
		fmt.Printf("%-24s %12d\n", "shipped batches", cell.ShipBatches)
		fmt.Printf("%-24s %12d\n", "shipped bytes", cell.ShipBytes)
		fmt.Printf("%-24s %12d\n", "applied batches", cell.ApplyBatches)
		fmt.Printf("%-24s %12d\n", "applied records", cell.ApplyRecords)
		fmt.Printf("%-24s %12d\n", "reconnects", cell.Reconnects)
		fmt.Printf("%-24s %12d\n", "quiesce comparisons", cell.Quiesces)
		fmt.Printf("%-24s %12d\n", "entries at promote", cell.Entries)
		fmt.Printf("%-24s %12d\n", "entries after promote", cell.PromoteEntries)
	}
	if len(bad) > 0 {
		writeSlowOpsDump()
		fmt.Fprintf(os.Stderr, "gistbench: repl soak FAILED: %s\n", strings.Join(bad, "; "))
		os.Exit(1)
	}
	if !*jsonFlag {
		fmt.Println("RESULT: replica tracked the primary, matched it exactly at every quiesce, and promoted cleanly")
	}
}

// replSoak runs the whole scenario and returns the cell plus acceptance
// failures.
func replSoak() (replCell, []string) {
	var cell replCell
	var badMu sync.Mutex
	var bad []string
	fail := func(format string, a ...any) {
		badMu.Lock()
		bad = append(bad, fmt.Sprintf(format, a...))
		badMu.Unlock()
	}

	db, err := gistdb.Open(gistdb.Options{PoolPages: 4096, SlowOpThreshold: soakSlowOpThreshold})
	must(err)
	idx, err := db.CreateIndex("repl", btree.Ops{})
	must(err)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	go db.Shipper().ServeListener(ln)
	addr := ln.Addr().String()

	rep, err := gistdb.OpenReplica(gistdb.Options{PoolPages: 4096}, func() (io.ReadWriteCloser, error) {
		return net.Dial("tcp", addr)
	})
	must(err)

	// Preload, rendezvous, and open the replicated index.
	const preload = 500
	var mu sync.Mutex
	committed := make(map[int64]gistdb.RID, preload)
	for i := 0; i < preload; i++ {
		tx, err := db.Begin()
		must(err)
		rid, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte(fmt.Sprintf("v-%d", i)))
		must(err)
		must(tx.Commit())
		committed[int64(i)] = rid
	}
	must(quiesce(db, rep))
	ridx, err := rep.OpenIndex("repl", btree.Ops{})
	must(err)

	writers, readers := 4, 4
	cell.Writers, cell.Readers = writers, readers
	var writerOps, readerOps atomic.Int64
	var lagSamples, lagSum, lagMax atomic.Int64

	// Per-writer key state persists across phases: each writer's next fresh
	// key and its own committed keys. Without this a second phase would
	// re-insert phase-one keys as duplicate entries.
	type writerState struct {
		rng  *rand.Rand
		next int64
		mine []int64
	}
	wstate := make([]*writerState, writers)
	for g := range wstate {
		wstate[g] = &writerState{
			rng:  rand.New(rand.NewSource(int64(g) + 1)),
			next: int64(g+1) << 32,
		}
	}

	phase := func(dur time.Duration) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(gid int) {
				defer wg.Done()
				ws := wstate[gid]
				rng := ws.rng
				for {
					select {
					case <-stop:
						return
					default:
					}
					tx, err := db.Begin()
					if err != nil {
						return
					}
					if rng.Intn(10) < 7 || len(ws.mine) == 0 {
						k := ws.next
						ws.next++
						rid, err := idx.Insert(tx, btree.EncodeKey(k), []byte(fmt.Sprintf("v-%d", k)))
						if err != nil {
							tx.Abort()
							continue
						}
						if tx.Commit() == nil {
							mu.Lock()
							committed[k] = rid
							mu.Unlock()
							ws.mine = append(ws.mine, k)
							writerOps.Add(1)
						}
					} else {
						i := rng.Intn(len(ws.mine))
						k := ws.mine[i]
						mu.Lock()
						rid := committed[k]
						mu.Unlock()
						if err := idx.Delete(tx, btree.EncodeKey(k), rid); err != nil {
							tx.Abort()
							continue
						}
						if tx.Commit() == nil {
							mu.Lock()
							delete(committed, k)
							mu.Unlock()
							ws.mine = append(ws.mine[:i], ws.mine[i+1:]...)
							writerOps.Add(1)
						}
					}
				}
			}(g)
		}
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(gid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(gid) + 101))
				for {
					select {
					case <-stop:
						return
					default:
					}
					tx, err := rep.Begin()
					if err != nil {
						return // promoted or closed
					}
					lo := int64(rng.Intn(preload))
					res, err := ridx.Search(tx, btree.EncodeRange(lo, lo+50), gistdb.ReadCommitted)
					if err == nil {
						for _, sr := range res {
							if rec, err := ridx.Fetch(sr.RID); err == nil {
								want := fmt.Sprintf("v-%d", btree.DecodeKey(sr.Key))
								if string(rec) != want {
									fail("replica fetch mismatch: %q != %q", rec, want)
								}
							}
						}
						readerOps.Add(1)
					}
					tx.Close()
				}
			}(g)
		}
		// Lag sampler.
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					lag := int64(rep.Lag())
					lagSamples.Add(1)
					lagSum.Add(lag)
					for {
						cur := lagMax.Load()
						if lag <= cur || lagMax.CompareAndSwap(cur, lag) {
							break
						}
					}
				}
			}
		}()
		time.Sleep(dur)
		close(stop)
		wg.Wait()
	}

	compare := func() map[int64]bool {
		must(quiesce(db, rep))
		p, err := primaryKeys(db, idx)
		must(err)
		r, err := replicaKeys(rep, ridx)
		must(err)
		if len(p) != len(r) {
			fail("quiesce divergence: primary %d keys, replica %d", len(p), len(r))
		} else {
			for k := range p {
				if !r[k] {
					fail("quiesce divergence: key %d on primary only", k)
					break
				}
			}
		}
		cell.Quiesces++
		return r
	}

	half := *durFlag / 2
	phase(half)
	compare()
	phase(half)
	finalKeys := compare()
	entries := len(finalKeys)
	cell.Entries = entries

	elapsed := (*durFlag).Seconds()
	cell.WriterOps = writerOps.Load()
	cell.ReaderOps = readerOps.Load()
	cell.WriterOpsSec = float64(cell.WriterOps) / elapsed
	cell.ReaderOpsSec = float64(cell.ReaderOps) / elapsed
	cell.AppliedLSN = int64(rep.AppliedLSN())
	cell.MaxLagLSN = lagMax.Load()
	cell.LagSamples = lagSamples.Load()
	if cell.LagSamples > 0 {
		cell.AvgLagLSN = float64(lagSum.Load()) / float64(cell.LagSamples)
	}
	pm, rm := db.Metrics(), rep.Metrics()
	cell.ShipBatches = pm["repl.ship_batches"]
	cell.ShipBytes = pm["repl.ship_bytes"]
	cell.ApplyBatches = rm["repl.apply_batches"]
	cell.ApplyRecords = rm["repl.apply_records"]
	cell.Reconnects = rm["repl.reconnects"]

	if _, err := ridx.Check(); err != nil {
		fail("replica invariants: %v", err)
	}

	// Failover: kill the primary, promote the replica, and demand the full
	// committed state plus acceptance of new writes.
	captureSlowOps(db)
	must(db.Close())
	ln.Close()
	promoted, err := rep.Promote()
	if err != nil {
		fail("promote: %v", err)
		return cell, bad
	}
	defer promoted.Close()
	pidx, err := promoted.OpenIndex("repl", btree.Ops{})
	if err != nil {
		fail("promoted index: %v", err)
		return cell, bad
	}
	tx, err := promoted.Begin()
	must(err)
	res, err := pidx.Search(tx, btree.EncodeRange(-1<<40, 1<<40), gistdb.ReadCommitted)
	must(err)
	must(tx.Commit())
	pkeys := keySet(res)
	if len(pkeys) != entries {
		fail("promoted state has %d keys, replica had %d at quiesce", len(pkeys), entries)
	} else {
		for k := range finalKeys {
			if !pkeys[k] {
				fail("key %d lost across promotion", k)
				break
			}
		}
	}
	tx2, err := promoted.Begin()
	must(err)
	const newKey = int64(1) << 45
	if _, err := pidx.Insert(tx2, btree.EncodeKey(newKey), []byte("post-promote")); err != nil {
		fail("post-promote insert: %v", err)
		tx2.Abort()
	} else {
		must(tx2.Commit())
	}
	if _, err := pidx.Check(); err != nil {
		fail("promoted invariants: %v", err)
	}
	cell.PromoteEntries = entries + 1

	// Acceptance: the replica must have actually carried read traffic while
	// lagging visibly behind a live write stream, with zero divergence.
	if cell.ReaderOps == 0 {
		fail("replica served no reads")
	}
	if cell.WriterOps == 0 {
		fail("primary performed no writes")
	}
	if cell.ApplyBatches == 0 {
		fail("replica applied no batches")
	}
	if cell.LagSamples == 0 {
		fail("lag was never sampled")
	}
	return cell, bad
}

// primaryKeys returns the primary's full committed key set.
func primaryKeys(db *gistdb.DB, idx *gistdb.Index) (map[int64]bool, error) {
	tx, err := db.Begin()
	if err != nil {
		return nil, err
	}
	defer tx.Commit()
	res, err := idx.Search(tx, btree.EncodeRange(-1<<40, 1<<40), gistdb.ReadCommitted)
	if err != nil {
		return nil, err
	}
	return keySet(res), nil
}

// replicaKeys returns the replica's full visible key set.
func replicaKeys(rep *gistdb.ReplicaDB, ridx *gistdb.ReplicaIndex) (map[int64]bool, error) {
	tx, err := rep.Begin()
	if err != nil {
		return nil, err
	}
	defer tx.Close()
	res, err := ridx.Search(tx, btree.EncodeRange(-1<<40, 1<<40), gistdb.ReadCommitted)
	if err != nil {
		return nil, err
	}
	return keySet(res), nil
}

func keySet(res []gistdb.SearchResult) map[int64]bool {
	keys := make(map[int64]bool, len(res))
	for _, sr := range res {
		keys[btree.DecodeKey(sr.Key)] = true
	}
	return keys
}

// quiesce forces the primary's log durable and blocks until the replica has
// applied through it: afterwards both serve the identical committed state.
func quiesce(db *gistdb.DB, rep *gistdb.ReplicaDB) error {
	if err := db.WAL().FlushAll(); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return rep.WaitApplied(ctx, db.WAL().FlushedLSN())
}
