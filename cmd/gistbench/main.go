// Command gistbench regenerates the experiments of EXPERIMENTS.md: the
// scenario reproductions of the paper's figures, the Table 1 crash matrix,
// and the quantitative experiments validating the paper's qualitative
// claims (link protocol superiority, hybrid predicate locking efficiency,
// no latches across I/O).
//
// Usage:
//
//	gistbench -exp all
//	gistbench -exp figure2|table1|throughput|predicates|latchio|nsn|gc
//	gistbench -threads 1,2,4,8,16 -keys 20000 -iolat 100us
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	gistdb "repro"
	"repro/internal/baseline"
	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/crashfuzz"
	"repro/internal/predicate"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/wal"
)

var (
	expFlag     = flag.String("exp", "all", "experiment: figure2, table1, throughput, predicates, latchio, nsn, gc, isolation, metrics, crashfuzz, maint, cancel, readscale, restart, repl, all")
	threadsFlag = flag.String("threads", "1,2,4,8,16", "goroutine counts for throughput experiments")
	keysFlag    = flag.Int("keys", 20000, "working-set size for throughput experiments")
	durFlag     = flag.Duration("dur", 2*time.Second, "measurement duration per throughput cell")
	iolatFlag   = flag.Duration("iolat", 200*time.Microsecond, "simulated I/O latency per page access")
	poolFlag    = flag.Int("pool", 64, "buffer pool pages for the protocol comparison")
	jsonFlag    = flag.Bool("json", false, "emit machine-readable JSON (metrics experiment only)")
	seedsFlag   = flag.Int64("seeds", 60, "crashfuzz: number of randomized crash-point seeds to run")
	seedFlag    = flag.Int64("seed", 0, "crashfuzz: replay one seed (as printed by a failure's repro line)")
)

func main() {
	flag.Parse()
	run := func(name string, fn func()) {
		if *expFlag == "all" || *expFlag == name {
			if !*jsonFlag {
				fmt.Printf("\n================ experiment: %s ================\n", name)
			}
			fn()
		}
	}
	run("figure2", expFigure2)
	run("table1", expTable1)
	run("throughput", expThroughput)
	run("predicates", expPredicates)
	run("latchio", expLatchIO)
	run("nsn", expNSN)
	run("gc", expGC)
	run("isolation", expIsolation)
	run("metrics", expMetrics)
	run("crashfuzz", expCrashFuzz)
	run("maint", expMaint)
	run("cancel", expCancel)
	run("readscale", expReadscale)
	run("restart", expRestart)
	run("repl", expRepl)
}

// maintCell is one soak measurement: an insert/delete churn workload run
// for -dur with the background maintenance daemons either off (Manual mode:
// the manager exists for its gauges but nothing ticks) or on with
// aggressive pacing. The contrast is the experiment: with daemons off the
// log and the dead-entry population grow without bound; with daemons on the
// checkpointer + truncator hold the log bounded and the GC sweeper holds
// dead entries bounded, at a measurable (small) foreground latency cost.
type maintCell struct {
	Daemons        bool    `json:"daemons"`
	Ops            int64   `json:"ops"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	P50Micros      float64 `json:"p50_us"`
	P99Micros      float64 `json:"p99_us"`
	MaxLogRecords  int64   `json:"max_log_records"`
	EndLogRecords  int64   `json:"end_log_records"`
	MaxDirtyPages  int64   `json:"max_dirty_pages"`
	MaxDeadEntries int64   `json:"max_dead_entries"`
	EndDeadEntries int64   `json:"end_dead_entries"`
	LogBase        int64   `json:"log_base"`
	Checkpoints    int64   `json:"checkpoints"`
	Truncations    int64   `json:"truncations"`
	TruncatedBytes int64   `json:"truncated_bytes"`
	FlushPages     int64   `json:"flush_pages"`
	GCReclaimed    int64   `json:"gc_reclaimed"`
}

func expMaint() {
	off := maintSoak(false)
	on := maintSoak(true)
	if *jsonFlag {
		out, err := json.MarshalIndent(map[string]maintCell{
			"daemons_off": off, "daemons_on": on,
		}, "", "  ")
		must(err)
		fmt.Println(string(out))
	} else {
		fmt.Printf("%-22s %14s %14s\n", "", "daemons off", "daemons on")
		row := func(name string, a, b int64) { fmt.Printf("%-22s %14d %14d\n", name, a, b) }
		rowF := func(name string, a, b float64) { fmt.Printf("%-22s %14.1f %14.1f\n", name, a, b) }
		rowF("ops/sec", off.OpsPerSec, on.OpsPerSec)
		rowF("p50 latency (us)", off.P50Micros, on.P50Micros)
		rowF("p99 latency (us)", off.P99Micros, on.P99Micros)
		row("max log records", off.MaxLogRecords, on.MaxLogRecords)
		row("end log records", off.EndLogRecords, on.EndLogRecords)
		row("log base (head)", off.LogBase, on.LogBase)
		row("max dirty pages", off.MaxDirtyPages, on.MaxDirtyPages)
		row("max dead entries", off.MaxDeadEntries, on.MaxDeadEntries)
		row("end dead entries", off.EndDeadEntries, on.EndDeadEntries)
		row("checkpoints", off.Checkpoints, on.Checkpoints)
		row("truncations", off.Truncations, on.Truncations)
		row("truncated bytes", off.TruncatedBytes, on.TruncatedBytes)
		row("write-behind flushes", off.FlushPages, on.FlushPages)
		row("GC entries reclaimed", off.GCReclaimed, on.GCReclaimed)
	}
	// The soak's acceptance criteria: with the daemons on, the log head must
	// actually advance, GC must actually reclaim, and the retained log must
	// be meaningfully smaller than the unmaintained run's.
	var bad []string
	if on.LogBase == 0 {
		bad = append(bad, "log head never advanced")
	}
	if on.Checkpoints == 0 {
		bad = append(bad, "checkpointer never fired")
	}
	if on.GCReclaimed == 0 {
		bad = append(bad, "GC sweeper reclaimed nothing")
	}
	if on.EndLogRecords >= off.EndLogRecords {
		bad = append(bad, fmt.Sprintf("retained log not bounded (on=%d off=%d records)",
			on.EndLogRecords, off.EndLogRecords))
	}
	if len(bad) > 0 {
		writeSlowOpsDump()
		fmt.Fprintf(os.Stderr, "gistbench: maint soak FAILED: %s\n", strings.Join(bad, "; "))
		os.Exit(1)
	}
	if !*jsonFlag {
		fmt.Println("RESULT: daemons held log and dead entries bounded while foreground work ran")
	}
}

func maintSoak(daemons bool) maintCell {
	mo := &gistdb.MaintenanceOptions{Manual: true}
	if daemons {
		mo = &gistdb.MaintenanceOptions{
			CheckpointBytes:    256 << 10,
			CheckpointInterval: 500 * time.Millisecond,
			CheckpointPoll:     10 * time.Millisecond,
			TruncateInterval:   20 * time.Millisecond,
			FlushInterval:      10 * time.Millisecond,
			FlushBatch:         64,
			FlushMinDirty:      16,
			GCInterval:         10 * time.Millisecond,
			GCDeadThreshold:    32,
			GCBurstLeaves:      32,
			GCSweepTicks:       32,
		}
	}
	// The pool is sized above the working set: the write-behind flusher can
	// then actually drain the DPT, which is what lets the truncation bound
	// (min dirty recLSN) track the append head.
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 16, PoolPages: 4096, Maintenance: mo, SlowOpThreshold: soakSlowOpThreshold})
	must(err)
	defer db.Close()
	idx, err := db.CreateIndex("maint", btree.Ops{})
	must(err)

	cell := maintCell{Daemons: daemons}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Sampler: the bounded-ness claim is about the whole run, not just its
	// endpoint, so track the maxima of the maint gauges over time.
	var gaugeMu sync.Mutex
	maxGauge := map[string]int64{}
	sample := func() {
		m := db.Metrics()
		gaugeMu.Lock()
		for _, g := range []string{"maint.log_records", "maint.dirty_pages", "maint.dead_entries"} {
			if m[g] > maxGauge[g] {
				maxGauge[g] = m[g]
			}
		}
		gaugeMu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				sample()
			}
		}
	}()

	// Churn writers: ~70% inserts, ~30% deletes of the writer's own earlier
	// keys — the delete marks are the GC sweeper's food.
	type kv struct {
		key int64
		rid gistdb.RID
	}
	const writers = 4
	latCh := make(chan []time.Duration, writers)
	var ops atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			next := seed * 10_000_000
			var mine []kv
			var lats []time.Duration
			for {
				select {
				case <-stop:
					latCh <- lats
					return
				default:
				}
				t0 := time.Now()
				tx, err := db.Begin()
				if err != nil {
					latCh <- lats
					return
				}
				if rng.Intn(10) < 3 && len(mine) > 0 {
					i := rng.Intn(len(mine))
					p := mine[i]
					if err := idx.Delete(tx, btree.EncodeKey(p.key), p.rid); err != nil {
						tx.Abort()
						continue
					}
					mine = append(mine[:i], mine[i+1:]...)
				} else {
					k := next
					next++
					rid, err := idx.Insert(tx, btree.EncodeKey(k), []byte("soak"))
					if err != nil {
						tx.Abort()
						continue
					}
					mine = append(mine, kv{k, rid})
				}
				if err := tx.Commit(); err != nil {
					continue
				}
				lats = append(lats, time.Since(t0))
				ops.Add(1)
			}
		}(int64(w + 1))
	}
	time.Sleep(*durFlag)
	close(stop)
	wg.Wait()
	sample()

	var all []time.Duration
	for i := 0; i < writers; i++ {
		all = append(all, <-latCh...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i].Microseconds())
	}
	m := db.Metrics()
	cell.Ops = ops.Load()
	cell.OpsPerSec = float64(cell.Ops) / durFlag.Seconds()
	cell.P50Micros = pct(0.50)
	cell.P99Micros = pct(0.99)
	cell.MaxLogRecords = maxGauge["maint.log_records"]
	cell.EndLogRecords = m["maint.log_records"]
	cell.MaxDirtyPages = maxGauge["maint.dirty_pages"]
	cell.MaxDeadEntries = maxGauge["maint.dead_entries"]
	cell.EndDeadEntries = m["maint.dead_entries"]
	cell.LogBase = int64(db.WAL().Base())
	cell.Checkpoints = m["maint.checkpoints"]
	cell.Truncations = m["maint.truncations"]
	cell.TruncatedBytes = m["maint.truncated_bytes"]
	cell.FlushPages = m["maint.flush_pages"]
	cell.GCReclaimed = m["maint.gc_reclaimed"]
	captureSlowOps(db)
	return cell
}

// cancelCell is the cancel soak's measurement: a mixed read/write workload
// where half the operations carry a tight random deadline, run to a fixed
// duration and then audited. The experiment's claim is the tentpole's:
// cancellation lands only on safe points, so however many thousand
// statements die mid-flight, the tree stays structurally valid, no lock
// queue entry or buffer pin leaks, and the surviving entries are exactly
// the committed ones.
type cancelCell struct {
	Ops             int64   `json:"ops"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	StmtCancels     int64   `json:"stmt_cancels"`
	CommitCancels   int64   `json:"commit_cancels"`
	Committed       int64   `json:"committed"`
	Aborted         int64   `json:"aborted"`
	LockCancels     int64   `json:"lock_cancels"`
	LockWaitNanos   int64   `json:"lock_wait_nanos"`
	LoadWaitNanos   int64   `json:"load_wait_nanos"`
	QueueWaiters    int64   `json:"queue_waiters"`
	PinnedFrames    int64   `json:"pinned_frames"`
	PinnedBaseline  int64   `json:"pinned_baseline"`
	ActiveTxns      int64   `json:"active_txns"`
	LiveEntries     int64   `json:"live_entries"`
	ModelEntries    int64   `json:"model_entries"`
	CommitCoalesced int64   `json:"commit_coalesced"`
}

func expCancel() {
	// Small pool + simulated I/O latency: fetches actually wait, so tight
	// deadlines expire mid-traversal, not just at the first check.
	db, err := gistdb.Open(gistdb.Options{
		MaxEntries:      8,
		PoolPages:       128,
		IOLatency:       20 * time.Microsecond,
		SlowOpThreshold: soakSlowOpThreshold,
	})
	must(err)
	defer db.Close()
	idx, err := db.CreateIndex("cancel", btree.Ops{})
	must(err)
	// Frames pinned by the open database itself (index anchor etc.) — the
	// leak assertion is against this baseline, not zero.
	baseline := db.Metrics()["buffer.pinned_frames"]

	cell := cancelCell{PinnedBaseline: baseline}
	type kv struct {
		key int64
		rid gistdb.RID
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ops, stmtCancels, commitCancels, committed, aborted atomic.Int64
	model := make([]map[int64]gistdb.RID, 0)
	var modelMu sync.Mutex

	// sharedNext keys a hot band all workers insert into and scan under
	// RepeatableRead: the scanners' predicate locks are what inserters
	// block on (lock.ForTxn waits), giving the deadlines real lock queues
	// to cancel out of — not just fetch waits.
	var sharedNext atomic.Int64
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			next := seed * 10_000_000
			mine := map[int64]gistdb.RID{}
			var own []kv // committed inserts, for picking delete victims
			defer func() {
				modelMu.Lock()
				model = append(model, mine)
				modelMu.Unlock()
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Half the operations carry a 0–500us deadline; the rest
				// run uncancellable as a control population.
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Intn(2) == 0 {
					d := time.Duration(rng.Intn(500)) * time.Microsecond
					ctx, cancel = context.WithDeadline(ctx, time.Now().Add(d))
				}
				tx, err := db.Begin()
				if err != nil {
					cancel()
					return
				}
				// Deferred model mutation: applied only if this txn commits.
				var apply func()
				var stmtErr error
				var holdPredicates bool
				switch r := rng.Intn(10); {
				case r < 5: // insert: hot shared band or private keyspace
					var k int64
					if rng.Intn(3) == 0 {
						k = sharedNext.Add(1)
					} else {
						k = next
						next++
					}
					rid, err := idx.InsertCtx(ctx, tx, btree.EncodeKey(k), []byte("cancel-soak"))
					if err == nil {
						apply = func() {
							mine[k] = rid
							own = append(own, kv{k, rid})
						}
					}
					stmtErr = err
				case r < 7 && len(own) > 0: // delete one of our committed keys
					i := rng.Intn(len(own))
					p := own[i]
					err := idx.DeleteCtx(ctx, tx, btree.EncodeKey(p.key), p.rid)
					if err == nil {
						apply = func() {
							delete(mine, p.key)
							own = append(own[:i], own[i+1:]...)
						}
					}
					stmtErr = err
				default: // RepeatableRead scan of the hot band: its predicate
					// locks are held until commit, so inserters into the band
					// queue behind this txn — and their deadlines fire there.
					hi := sharedNext.Load() + 32
					lo := hi - 96
					if lo < 0 {
						lo = 0
					}
					_, err := idx.SearchCtx(ctx, tx, btree.EncodeRange(lo, hi), gistdb.RepeatableRead)
					holdPredicates = err == nil
					stmtErr = err
				}
				ops.Add(1)
				if stmtErr != nil {
					if isCancelErr(stmtErr) {
						stmtCancels.Add(1)
					}
					// Statement-level rollback already ran (CancelStatement
					// policy); the txn holds no effects worth keeping.
					tx.Abort()
					aborted.Add(1)
					cancel()
					continue
				}
				if holdPredicates {
					// Simulated think time with predicate locks held: the
					// window in which inserters block on this scanner.
					time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
				}
				switch err := tx.CommitCtx(ctx); {
				case err == nil, err == gistdb.ErrCommitPending:
					committed.Add(1)
					if apply != nil {
						apply()
					}
				case isCancelErr(err):
					commitCancels.Add(1)
					tx.Abort()
					aborted.Add(1)
				default:
					tx.Abort()
					aborted.Add(1)
				}
				cancel()
			}
		}(int64(w + 1))
	}
	time.Sleep(*durFlag)
	close(stop)
	wg.Wait()

	// Pending group commits finish on a background goroutine; give the
	// txn table a moment to drain before auditing it.
	deadline := time.Now().Add(5 * time.Second)
	for db.Stats().ActiveTxns > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	m := db.Metrics()
	cell.Ops = ops.Load()
	cell.OpsPerSec = float64(cell.Ops) / durFlag.Seconds()
	cell.StmtCancels = stmtCancels.Load()
	cell.CommitCancels = commitCancels.Load()
	cell.Committed = committed.Load()
	cell.Aborted = aborted.Load()
	cell.LockCancels = m["lock.cancels"]
	cell.LockWaitNanos = m["lock.wait_nanos"]
	cell.LoadWaitNanos = m["buffer.load_wait_nanos"]
	cell.QueueWaiters = m["lock.queue_waiters"]
	cell.PinnedFrames = m["buffer.pinned_frames"]
	cell.ActiveTxns = int64(db.Stats().ActiveTxns)

	// The oracle: every structural invariant holds and the live entries are
	// exactly the union of the workers' committed models.
	rep, err := idx.Check()
	must(err)
	cell.LiveEntries = int64(len(rep.Live))
	want := map[int64]gistdb.RID{}
	for _, mdl := range model {
		for k, rid := range mdl {
			want[k] = rid
		}
	}
	cell.ModelEntries = int64(len(want))
	cell.CommitCoalesced = m["wal.commit_coalesced"]

	var bad []string
	if cell.StmtCancels+cell.CommitCancels == 0 {
		bad = append(bad, "no operation was ever cancelled (deadlines too loose?)")
	}
	if cell.QueueWaiters != 0 {
		bad = append(bad, fmt.Sprintf("lock.queue_waiters = %d after quiesce (orphan waiter)", cell.QueueWaiters))
	}
	if cell.PinnedFrames != cell.PinnedBaseline {
		bad = append(bad, fmt.Sprintf("buffer.pinned_frames = %d, want baseline %d (leaked pin)",
			cell.PinnedFrames, cell.PinnedBaseline))
	}
	if cell.ActiveTxns != 0 {
		bad = append(bad, fmt.Sprintf("%d transactions still active after quiesce", cell.ActiveTxns))
	}
	if cell.LiveEntries != cell.ModelEntries {
		bad = append(bad, fmt.Sprintf("live entries = %d, committed model = %d", cell.LiveEntries, cell.ModelEntries))
	} else {
		for k, rid := range want {
			key, ok := rep.Live[rid]
			if !ok || btree.DecodeKey(key) != k {
				bad = append(bad, fmt.Sprintf("committed key %d (rid %v) missing or wrong in tree", k, rid))
				break
			}
		}
	}

	if *jsonFlag {
		out, err := json.MarshalIndent(cell, "", "  ")
		must(err)
		fmt.Println(string(out))
	} else {
		fmt.Printf("%-24s %12d\n", "ops", cell.Ops)
		fmt.Printf("%-24s %12.0f\n", "ops/sec", cell.OpsPerSec)
		fmt.Printf("%-24s %12d\n", "statement cancels", cell.StmtCancels)
		fmt.Printf("%-24s %12d\n", "commit cancels", cell.CommitCancels)
		fmt.Printf("%-24s %12d\n", "committed txns", cell.Committed)
		fmt.Printf("%-24s %12d\n", "aborted txns", cell.Aborted)
		fmt.Printf("%-24s %12d\n", "lock.cancels", cell.LockCancels)
		fmt.Printf("%-24s %12.1f\n", "lock wait (ms)", float64(cell.LockWaitNanos)/1e6)
		fmt.Printf("%-24s %12.1f\n", "load wait (ms)", float64(cell.LoadWaitNanos)/1e6)
		fmt.Printf("%-24s %12d\n", "live entries", cell.LiveEntries)
		fmt.Printf("%-24s %12d\n", "wal.commit_coalesced", cell.CommitCoalesced)
	}
	if len(bad) > 0 {
		captureSlowOps(db)
		writeSlowOpsDump()
		fmt.Fprintf(os.Stderr, "gistbench: cancel soak FAILED: %s\n", strings.Join(bad, "; "))
		os.Exit(1)
	}
	if !*jsonFlag {
		fmt.Println("RESULT: random cancellation left no orphan waiters, leaked pins, or structural damage")
	}
}

// isCancelErr reports whether err is a context cancellation or deadline.
func isCancelErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// readscaleCell is one cell of the read-scaling soak (E19): th reader
// goroutines running range searches and cursor scans over a preloaded tree
// for -dur, against a light background inserter, with the optimistic read
// path on or off. The latch.* columns are deltas of the process-global
// latch registry measured around the cell.
type readscaleCell struct {
	Optimistic   bool    `json:"optimistic"`
	Threads      int     `json:"threads"`
	Ops          int64   `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	OptReads     int64   `json:"opt_reads"`
	OptRestarts  int64   `json:"opt_restarts"`
	OptFallbacks int64   `json:"opt_fallbacks"`
	SAcquires    int64   `json:"s_acquires"`
	XAcquires    int64   `json:"x_acquires"`
}

func expReadscale() {
	var cells []readscaleCell
	for _, optimistic := range []bool{true, false} {
		cells = append(cells, readscaleSoak(optimistic)...)
	}

	if *jsonFlag {
		out, err := json.MarshalIndent(map[string]any{"cells": cells}, "", "  ")
		must(err)
		fmt.Println(string(out))
	} else {
		fmt.Printf("%-12s %8s %10s %12s %12s %12s %12s %12s %12s\n",
			"mode", "threads", "ops", "ops/sec", "opt_reads", "restarts", "fallbacks", "s_acq", "x_acq")
		for _, c := range cells {
			mode := "pessimistic"
			if c.Optimistic {
				mode = "optimistic"
			}
			fmt.Printf("%-12s %8d %10d %12.0f %12d %12d %12d %12d %12d\n",
				mode, c.Threads, c.Ops, c.OpsPerSec,
				c.OptReads, c.OptRestarts, c.OptFallbacks, c.SAcquires, c.XAcquires)
		}
	}

	// Acceptance: the optimistic cells must actually exercise the
	// latch-free path (opt_reads > 0) with the fallback ladder a rare
	// event, and the pessimistic cells must never touch it.
	var bad []string
	for _, c := range cells {
		if c.Optimistic {
			if c.OptReads == 0 {
				bad = append(bad, fmt.Sprintf("optimistic cell threads=%d performed no optimistic reads", c.Threads))
			}
			if limit := max64(100, c.OptReads/20); c.OptFallbacks > limit {
				bad = append(bad, fmt.Sprintf(
					"optimistic cell threads=%d fell back %d times (opt_reads=%d, limit %d)",
					c.Threads, c.OptFallbacks, c.OptReads, limit))
			}
		} else if c.OptReads != 0 {
			bad = append(bad, fmt.Sprintf("pessimistic cell threads=%d counted %d optimistic reads", c.Threads, c.OptReads))
		}
	}
	if len(bad) > 0 {
		writeSlowOpsDump()
		fmt.Fprintf(os.Stderr, "gistbench: readscale soak FAILED: %s\n", strings.Join(bad, "; "))
		os.Exit(1)
	}
	if !*jsonFlag {
		fmt.Println("RESULT: optimistic read path carried the load with rare pessimistic fallbacks")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// readscaleSoak runs one mode's cells across the -threads counts on a
// single preloaded database.
func readscaleSoak(optimistic bool) []readscaleCell {
	mode := gistdb.OptimisticOff
	if optimistic {
		mode = gistdb.OptimisticOn
	}
	db, err := gistdb.Open(gistdb.Options{PoolPages: 4096, OptimisticReads: mode, SlowOpThreshold: soakSlowOpThreshold})
	must(err)
	defer db.Close()
	idx, err := db.CreateIndex("readscale", btree.Ops{})
	must(err)
	const keys = 10000
	for i := 0; i < keys; i++ {
		tx, err := db.Begin()
		must(err)
		_, err = idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("readscale"))
		must(err)
		must(tx.Commit())
	}

	var cells []readscaleCell
	for _, th := range parseThreads() {
		before := db.Metrics()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var ops atomic.Int64

		// Light background inserter into a disjoint keyspace: enough page
		// versions churn to exercise restarts and the fallback ladder
		// without perturbing the readers' expected result counts.
		wg.Add(1)
		go func() {
			defer wg.Done()
			next := int64(10_000_000)
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := db.Begin()
				if err != nil {
					return
				}
				if _, err := idx.Insert(tx, btree.EncodeKey(next), []byte("churn")); err != nil {
					tx.Abort()
				} else {
					tx.Commit()
					next++
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()

		for r := 0; r < th; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					tx, err := db.Begin()
					if err != nil {
						return
					}
					if rng.Intn(5) < 4 { // batch range search, width 20
						lo := int64(rng.Intn(keys - 20))
						rs, err := idx.Search(tx, btree.EncodeRange(lo, lo+19), gistdb.ReadCommitted)
						if err != nil || len(rs) != 20 {
							captureSlowOps(db)
							writeSlowOpsDump()
							fmt.Fprintf(os.Stderr, "gistbench: readscale search: err=%v results=%d want 20\n", err, len(rs))
							os.Exit(1)
						}
					} else { // incremental cursor drain, width 100
						lo := int64(rng.Intn(keys - 100))
						c, err := idx.OpenCursor(tx, btree.EncodeRange(lo, lo+99), gistdb.ReadCommitted)
						must(err)
						n := 0
						for {
							_, ok, err := c.Next()
							must(err)
							if !ok {
								break
							}
							n++
						}
						c.Close()
						if n != 100 {
							captureSlowOps(db)
							writeSlowOpsDump()
							fmt.Fprintf(os.Stderr, "gistbench: readscale cursor drained %d entries, want 100\n", n)
							os.Exit(1)
						}
					}
					tx.Commit()
					ops.Add(1)
				}
			}(int64(th*100 + r + 1))
		}
		time.Sleep(*durFlag)
		close(stop)
		wg.Wait()

		m := db.Metrics()
		d := func(name string) int64 { return m[name] - before[name] }
		cells = append(cells, readscaleCell{
			Optimistic:   optimistic,
			Threads:      th,
			Ops:          ops.Load(),
			OpsPerSec:    float64(ops.Load()) / durFlag.Seconds(),
			OptReads:     d("latch.opt_reads"),
			OptRestarts:  d("latch.opt_restarts"),
			OptFallbacks: d("latch.opt_fallbacks"),
			SAcquires:    d("latch.s_acquires"),
			XAcquires:    d("latch.x_acquires"),
		})
		captureSlowOps(db)
	}
	return cells
}

// expCrashFuzz runs the randomized crash-point recovery harness over a
// range of seeds (or a single seed via -seed, for reproducing a failure).
// Each seed derives a full scenario — crash budget, optional mid-recovery
// second crash — deterministically, so a violation's repro line is just
// its seed number.
func expCrashFuzz() {
	base, err := os.MkdirTemp("", "crashfuzz-*")
	must(err)
	defer os.RemoveAll(base)

	calibDir := filepath.Join(base, "calib")
	must(os.MkdirAll(calibDir, 0o755))
	calib, err := crashfuzz.Calibrate(0, calibDir)
	must(err)

	var seeds []int64
	if *seedFlag != 0 {
		seeds = []int64{*seedFlag}
	} else {
		for s := int64(1); s <= *seedsFlag; s++ {
			seeds = append(seeds, s)
		}
	}
	fmt.Printf("calibrated workload: %d bytes; running %d seed(s)\n", calib, len(seeds))

	type outcome struct {
		res *crashfuzz.Result
		err error
	}
	results := make([]outcome, len(seeds))
	var next int64 = -1
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(seeds) {
					return
				}
				dir := filepath.Join(base, fmt.Sprintf("seed%d", seeds[i]))
				if err := os.MkdirAll(dir, 0o755); err != nil {
					results[i] = outcome{nil, err}
					continue
				}
				res, rerr := crashfuzz.RunSeed(seeds[i], dir, calib)
				results[i] = outcome{res, rerr}
				os.RemoveAll(dir)
			}
		}()
	}
	wg.Wait()

	sites := map[string]int{}
	tails := map[string]int{}
	var second, restarts, violations int
	for i, o := range results {
		if o.err != nil {
			violations++
			fmt.Printf("\nVIOLATION seed %d: %v\n  repro: gistbench -exp crashfuzz -seed %d\n",
				seeds[i], o.err, seeds[i])
			continue
		}
		sites[o.res.CrashSite]++
		tails[o.res.TailType]++
		restarts += o.res.Restarts
		if o.res.SecondCrash {
			second++
		}
	}
	fmt.Printf("\ncrash sites:")
	for _, s := range []string{"wal", "walt", "pages", "dw", "explicit"} {
		fmt.Printf("  %s=%d", s, sites[s])
	}
	fmt.Printf("\nsurvivor-log tail types: %d distinct\n", len(tails))
	fmt.Printf("second crashes during recovery: %d\n", second)
	fmt.Printf("total restarts validated: %d\n", restarts)
	if violations > 0 {
		fmt.Printf("\n%d VIOLATION(S) — see repro lines above\n", violations)
		os.Exit(1)
	}
	fmt.Printf("all %d seeds recovered cleanly\n", len(seeds)-violations)
}

// expMetrics runs a small mixed workload and dumps the unified stats
// registry, cross-checking the legacy typed Stats view against the named
// counters so any divergence between the two read paths is visible.
func expMetrics() {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8})
	must(err)
	defer db.Close()
	idx, err := db.CreateIndex("metrics", btree.Ops{})
	must(err)

	for k := int64(1); k <= 200; k++ {
		tx, _ := db.Begin()
		_, err := idx.Insert(tx, btree.EncodeKey(k), []byte("v"))
		must(err)
		must(tx.Commit())
	}
	tx, _ := db.Begin()
	_, err = idx.Search(tx, btree.EncodeRange(1, 200), gistdb.RepeatableRead)
	must(err)
	must(tx.Commit())
	tx, _ = db.Begin()
	_, err = idx.Insert(tx, btree.EncodeKey(999), []byte("doomed"))
	must(err)
	must(tx.Abort())

	// Replica leg: stream a slice of the workload to a read replica so the
	// repl.apply_lag histogram and the applier's recovery.redo_drain see
	// real batches, then fold the replica-side keys into the snapshot.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	go db.Shipper().ServeListener(ln)
	addr := ln.Addr().String()
	rep, err := gistdb.OpenReplica(gistdb.Options{}, func() (io.ReadWriteCloser, error) {
		return net.Dial("tcp", addr)
	})
	must(err)
	for k := int64(201); k <= 260; k++ {
		tx, _ := db.Begin()
		_, err := idx.Insert(tx, btree.EncodeKey(k), []byte("v"))
		must(err)
		must(tx.Commit())
	}
	must(quiesce(db, rep))

	m := db.Metrics()
	for name, v := range rep.Metrics() {
		if strings.HasPrefix(name, "repl.") || strings.HasPrefix(name, "recovery.") {
			m[name] = v
		}
	}
	must(rep.Close())
	if *jsonFlag {
		// Machine-readable path for CI trend tracking: just the merged
		// snapshot, keys sorted, nothing else on stdout.
		out, err := json.MarshalIndent(m, "", "  ")
		must(err)
		fmt.Println(string(out))
		return
	}
	fmt.Println("unified metrics snapshot (name = value):")
	for _, name := range stats.Names(m) {
		fmt.Printf("  %-28s %d\n", name, m[name])
	}

	s := db.Stats()
	check := func(name string, legacy int64) {
		status := "ok"
		if m[name] != legacy {
			status = fmt.Sprintf("MISMATCH (registry %d)", m[name])
		}
		fmt.Printf("  legacy %-22s %-8d %s\n", name, legacy, status)
	}
	fmt.Println("legacy Stats() cross-check:")
	check("txn.commits", s.Commits)
	check("txn.aborts", s.Aborts)
	check("lock.acquisitions", s.LockAcquisitions)
	check("lock.waits", s.LockWaits)
	check("lock.deadlocks", s.Deadlocks)
	check("predicate.checks", s.PredicateChecks)
	check("predicate.preds_examined", s.PredicatesExamined)
	check("buffer.hits", s.BufferHits)
	check("buffer.misses", s.BufferMisses)
	check("wal.appends", s.LogRecords)
	check("wal.syncs", s.LogFlushes)
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gistbench:", err)
		os.Exit(1)
	}
}

// Slow-op evidence for failed soaks: each soak captures its database's
// flight-recorder rings before the instance goes away; a failed acceptance
// check then writes them to slowops.json, which CI uploads as an artifact.
var slowOpsDump []byte

func captureSlowOps(db *gistdb.DB) {
	out, err := json.MarshalIndent(map[string][]gistdb.OpTrace{
		"slow":   db.SlowOps(),
		"recent": db.RecentOps(),
	}, "", "  ")
	if err == nil {
		slowOpsDump = out
	}
}

func writeSlowOpsDump() {
	if slowOpsDump == nil {
		return
	}
	if err := os.WriteFile("slowops.json", slowOpsDump, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gistbench: slowops dump:", err)
	}
}

// soakSlowOpThreshold pins any soak operation slower than this into the
// recorder's slow ring.
const soakSlowOpThreshold = 20 * time.Millisecond

func parseThreads() []int {
	var out []int
	for _, s := range strings.Split(*threadsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		must(err)
		out = append(out, n)
	}
	return out
}

// expFigure2 reproduces Figures 1 and 2: a scan suspends at a leaf, the
// leaf splits underneath it, and the NSN protocol routes the resumed scan
// across the rightlink so nothing is lost.
func expFigure2() {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8})
	must(err)
	defer db.Close()
	idx, err := db.CreateIndex("fig2", btree.Ops{})
	must(err)

	for k := int64(100); k <= 105; k++ {
		tx, _ := db.Begin()
		_, err := idx.Insert(tx, btree.EncodeKey(k), []byte("x"))
		must(err)
		must(tx.Commit())
	}
	blocker, _ := db.Begin()
	_, err = idx.Insert(blocker, btree.EncodeKey(106), []byte("pending"))
	must(err)

	fmt.Println("scan of [100,110] starts; it blocks on the record lock of the uncommitted key 106")
	type scanOut struct {
		keys []int64
		err  error
	}
	done := make(chan scanOut, 1)
	go func() {
		tx, _ := db.Begin()
		rs, err := idx.Search(tx, btree.EncodeRange(100, 110), gistdb.RepeatableRead)
		tx.Commit()
		var ks []int64
		for _, r := range rs {
			ks = append(ks, btree.DecodeKey(r.Key))
		}
		done <- scanOut{keys: ks, err: err}
	}()
	time.Sleep(100 * time.Millisecond)

	before := idx.TreeStats()
	fmt.Println("while the scan sleeps, inserts of keys 1..6 split its leaf (in-range keys move right)")
	for k := int64(1); k <= 6; k++ {
		tx, _ := db.Begin()
		_, err := idx.Insert(tx, btree.EncodeKey(k), []byte("y"))
		must(err)
		must(tx.Commit())
	}
	must(blocker.Commit())
	out := <-done
	must(out.err)
	after := idx.TreeStats()

	fmt.Printf("scan resumed and returned %d keys: %v\n", len(out.keys), out.keys)
	fmt.Printf("splits while scan was blocked: %d; rightlink chases by the scan: %d\n",
		after.Splits-before.Splits, after.RightlinkChases-before.RightlinkChases)
	if len(out.keys) == 7 {
		fmt.Println("RESULT: no keys lost across the concurrent split (Figure 1's anomaly prevented; Figure 2's mechanism observed)")
	} else {
		fmt.Println("RESULT: FAILED — keys lost!")
	}
}

// expTable1 crashes immediately after the first durable occurrence of each
// Table 1 record type and verifies restart recovery, mirroring the
// TestTable1Matrix integration test but printing the paper's table rows.
func expTable1() {
	types := []wal.RecType{
		wal.RecParentEntryUpdate, wal.RecSplit, wal.RecGarbageCollection,
		wal.RecInternalEntryAdd, wal.RecInternalEntryUpdate, wal.RecInternalEntryDelete,
		wal.RecAddLeafEntry, wal.RecMarkLeafEntry, wal.RecGetPage, wal.RecFreePage,
		wal.RecRootChange,
	}
	fmt.Printf("%-24s %-10s %-12s %s\n", "log record (Table 1)", "crash-cut", "recovered", "post-recovery state")
	for _, typ := range types {
		ok, detail := table1Row(typ)
		status := "OK"
		if !ok {
			status = "FAILED"
		}
		fmt.Printf("%-24s %-10s %-12s %s\n", typ.String(), "after-1st", status, detail)
	}
}

func table1Row(typ wal.RecType) (bool, string) {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 4})
	if err != nil {
		return false, err.Error()
	}
	idx, err := db.CreateIndex("t1", btree.Ops{})
	if err != nil {
		return false, err.Error()
	}
	var rids []gistdb.RID
	for i := 0; i < 40; i++ {
		tx, _ := db.Begin()
		rid, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("v"))
		if err != nil {
			return false, err.Error()
		}
		tx.Commit()
		rids = append(rids, rid)
	}
	tx, _ := db.Begin()
	for i := 0; i < 8; i++ {
		if err := idx.Delete(tx, btree.EncodeKey(int64(i)), rids[i]); err != nil {
			return false, err.Error()
		}
	}
	tx.Commit()
	gc, _ := db.Begin()
	if err := idx.GC(gc); err != nil {
		return false, err.Error()
	}
	gc.Commit()

	db2, committed, err := crashAfterFirst(db, typ)
	if err != nil {
		return false, err.Error()
	}
	idx2, err := db2.OpenIndex("t1", btree.Ops{})
	if err != nil {
		return false, "open: " + err.Error()
	}
	tx2, _ := db2.Begin()
	hits, err := idx2.Search(tx2, btree.EncodeRange(-100, 100000), gistdb.ReadCommitted)
	tx2.Commit()
	if err != nil {
		return false, "search: " + err.Error()
	}
	if len(hits) != committed {
		return false, fmt.Sprintf("%d keys, want %d", len(hits), committed)
	}
	if rep, err := idx2.Check(); err != nil {
		return false, "invariants: " + err.Error()
	} else if rep.Orphans != 0 {
		return false, "orphan nodes"
	}
	// Recovered engine accepts new work.
	tx3, _ := db2.Begin()
	if _, err := idx2.Insert(tx3, btree.EncodeKey(77777), []byte("post")); err != nil {
		return false, "post-insert: " + err.Error()
	}
	tx3.Commit()
	return true, fmt.Sprintf("%d committed keys intact, invariants hold, writable", committed)
}

// crashAfterFirst is implemented in harness.go: it truncates the log after
// the first occurrence of typ (past bootstrap) and restarts.

// expThroughput is E8: protocols x thread counts x workload mixes over a
// latency-bearing disk.
func expThroughput() {
	fmt.Printf("working set %d keys, I/O latency %v, pool %d pages, %v per cell\n",
		*keysFlag, *iolatFlag, *poolFlag, *durFlag)
	fmt.Printf("%-9s %-8s %-14s %12s %14s\n", "protocol", "threads", "mix", "ops/sec", "latched-I/Os")
	for _, mix := range []struct {
		name     string
		readFrac int // percent
	}{
		{"90r/10w", 90},
		{"50r/50w", 50},
	} {
		for _, proto := range []baseline.Protocol{baseline.Coarse, baseline.Coupling, baseline.Link} {
			for _, th := range parseThreads() {
				ops, latched := throughputCell(proto, th, mix.readFrac)
				fmt.Printf("%-9s %-8d %-14s %12.0f %14d\n", proto, th, mix.name, ops, latched)
			}
		}
	}
}

func throughputCell(proto baseline.Protocol, threads, readFrac int) (float64, int64) {
	disk := storage.NewSlowDisk(storage.NewMemDisk(), *iolatFlag)
	pool := buffer.New(disk, *poolFlag, nil)
	ix, err := baseline.New(pool, btree.Ops{}, proto, 64)
	must(err)
	n := *keysFlag
	for i := 0; i < n; i++ {
		must(ix.Insert(btree.EncodeKey(int64(i*2)), gistdb.RID{Page: 1, Slot: uint16(i % 60000)}))
	}
	var ops atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(rng.Intn(n * 2))
				if rng.Intn(100) < readFrac {
					if _, err := ix.Search(btree.EncodeRange(k, k+20)); err != nil {
						panic(err)
					}
				} else {
					if err := ix.Insert(btree.EncodeKey(k*2+1), gistdb.RID{Page: 2, Slot: uint16(k % 60000)}); err != nil {
						panic(err)
					}
				}
				ops.Add(1)
			}
		}(int64(t + 1))
	}
	time.Sleep(*durFlag)
	close(stop)
	wg.Wait()
	return float64(ops.Load()) / durFlag.Seconds(), ix.LatchedIOs.Load()
}

// expPredicates is E9: predicates examined per insert conflict check,
// hybrid node-attached vs tree-global, as live scanner count grows.
func expPredicates() {
	fmt.Printf("%-14s %18s %18s %8s\n", "live scanners", "hybrid preds/check", "global preds/check", "ratio")
	for _, scanners := range []int{1, 10, 100, 1000} {
		h, g := predicateCell(scanners)
		ratio := g / h
		fmt.Printf("%-14d %18.1f %18.1f %7.1fx\n", scanners, h, g, ratio)
	}
}

func predicateCell(scanners int) (hybrid, global float64) {
	// Build a predicate manager with `scanners` search predicates spread
	// over many leaves (as attached by real scans over disjoint ranges),
	// then measure both check disciplines for inserts on one leaf.
	pm := predicate.NewManager()
	leaves := 64
	for s := 0; s < scanners; s++ {
		lo := int64(s * 100)
		p := pm.New(gistdbTxn(s), predicate.Search, btree.EncodeRange(lo, lo+99))
		// Each scan touches root + one leaf (plus occasionally two).
		pm.Attach(p, 1, nil) // root
		pm.Attach(p, pageID(2+s%leaves), nil)
		if s%7 == 0 {
			pm.Attach(p, pageID(2+(s+1)%leaves), nil)
		}
	}
	ops := btree.Ops{}
	key := btree.EncodeKey(50)
	conflict := func(p *predicate.Predicate) bool { return ops.Consistent(key, p.Data) }

	const checks = 1000
	pm.ResetStats()
	for i := 0; i < checks; i++ {
		pm.Conflicting(pageID(2+i%leaves), 999999, conflict)
	}
	_, examined := pm.Stats()
	hybrid = float64(examined) / checks
	if hybrid == 0 {
		hybrid = 0.001 // avoid division artifacts in the ratio column
	}

	pm.ResetStats()
	for i := 0; i < checks; i++ {
		pm.ConflictingGlobal(999999, conflict)
	}
	_, examined = pm.Stats()
	global = float64(examined) / checks
	return hybrid, global
}

// expLatchIO is E10: I/Os performed while holding node latches, per
// protocol, with a pool far smaller than the tree.
func expLatchIO() {
	fmt.Printf("%-10s %14s %14s %10s\n", "protocol", "latched I/Os", "latchless I/Os", "share")
	for _, proto := range []baseline.Protocol{baseline.Coupling, baseline.Link} {
		pool := buffer.New(storage.NewMemDisk(), 16, nil)
		ix, err := baseline.New(pool, btree.Ops{}, proto, 16)
		must(err)
		for i := 0; i < 5000; i++ {
			must(ix.Insert(btree.EncodeKey(int64(i)), gistdb.RID{Page: 1, Slot: uint16(i % 60000)}))
		}
		for i := 0; i < 500; i++ {
			_, err := ix.Search(btree.EncodeRange(int64(i*7), int64(i*7+30)))
			must(err)
		}
		l, ll := ix.LatchedIOs.Load(), ix.LatchlessIOs.Load()
		share := float64(l) / float64(l+ll) * 100
		fmt.Printf("%-10s %14d %14d %9.1f%%\n", proto, l, ll, share)
	}
	fmt.Println("(the paper's protocol performs zero I/Os under latches; coupling cannot avoid them)")
}

// expNSN is the §10.1 ablation: reading the tree-global counter from the
// log tail versus memorizing the parent page's LSN.
func expNSN() {
	fmt.Printf("%-28s %14s %14s %14s\n", "counter source", "inserts/sec", "searches/sec", "false chases")
	for _, opt := range []bool{false, true} {
		name := "global counter (log tail)"
		if opt {
			name = "parent LSN (§10.1 opt)"
		}
		ins, srch, chases := nsnCell(opt)
		fmt.Printf("%-28s %14.0f %14.0f %14d\n", name, ins, srch, chases)
	}
}

func nsnCell(parentLSN bool) (insPerSec, searchPerSec float64, chases int64) {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 64, ParentLSNOpt: parentLSN, PoolPages: 4096})
	must(err)
	defer db.Close()
	idx, err := db.CreateIndex("nsn", btree.Ops{})
	must(err)

	const n = 20000
	start := time.Now()
	for i := 0; i < n; i++ {
		tx, _ := db.Begin()
		_, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("v"))
		must(err)
		must(tx.Commit())
	}
	insPerSec = n / time.Since(start).Seconds()

	const q = 5000
	start = time.Now()
	for i := 0; i < q; i++ {
		tx, _ := db.Begin()
		_, err := idx.Search(tx, btree.EncodeRange(int64(i), int64(i+50)), gistdb.ReadCommitted)
		must(err)
		must(tx.Commit())
	}
	searchPerSec = q / time.Since(start).Seconds()
	return insPerSec, searchPerSec, idx.TreeStats().RightlinkChases
}

// expGC is E12: logical deletes leave marked entries; garbage collection
// reclaims them and unlinks emptied nodes.
func expGC() {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8})
	must(err)
	defer db.Close()
	idx, err := db.CreateIndex("gc", btree.Ops{})
	must(err)
	const n = 2000
	rids := make([]gistdb.RID, n)
	for i := 0; i < n; i++ {
		tx, _ := db.Begin()
		rid, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("v"))
		must(err)
		must(tx.Commit())
		rids[i] = rid
	}
	tx, _ := db.Begin()
	for i := 0; i < n/2; i++ {
		must(idx.Delete(tx, btree.EncodeKey(int64(i)), rids[i]))
	}
	must(tx.Commit())
	repBefore, err := idx.Check()
	must(err)

	gc, _ := db.Begin()
	must(idx.GC(gc))
	must(gc.Commit())
	repAfter, err := idx.Check()
	must(err)

	st := idx.TreeStats()
	fmt.Printf("%-22s %10s %10s\n", "", "before GC", "after GC")
	fmt.Printf("%-22s %10d %10d\n", "live entries", repBefore.Entries, repAfter.Entries)
	fmt.Printf("%-22s %10d %10d\n", "delete-marked entries", repBefore.Marked, repAfter.Marked)
	fmt.Printf("%-22s %10d %10d\n", "tree nodes", repBefore.Nodes, repAfter.Nodes)
	fmt.Printf("%-22s %10d %10d\n", "leaves", repBefore.Leaves, repAfter.Leaves)
	fmt.Printf("garbage collected %d entries in %d passes; %d nodes unlinked\n",
		st.GCEntries, st.GCRuns, st.NodeFrees)
}

// expIsolation quantifies the cost of Degree 3 isolation (§4.3): scans at
// RepeatableRead attach predicates to every visited node and hold record
// locks to end of transaction, while ReadCommitted scans do neither; writers
// into scanned ranges block on the predicates. The paper notes this
// non-gradual lock-range expansion as the hybrid scheme's retained drawback.
func expIsolation() {
	fmt.Printf("%-16s %14s %14s %16s\n", "isolation", "scans/sec", "inserts/sec", "pred. blocks")
	for _, iso := range []struct {
		name string
		lvl  gistdb.Isolation
	}{{"ReadCommitted", gistdb.ReadCommitted}, {"RepeatableRead", gistdb.RepeatableRead}} {
		scans, inserts, blocks := isolationCell(iso.lvl)
		fmt.Printf("%-16s %14.0f %14.0f %16d\n", iso.name, scans, inserts, blocks)
	}
}

func isolationCell(iso gistdb.Isolation) (scansPerSec, insertsPerSec float64, blocks int64) {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 64, PoolPages: 4096})
	must(err)
	defer db.Close()
	idx, err := db.CreateIndex("iso", btree.Ops{})
	must(err)
	const n = 10000
	for i := 0; i < n; i++ {
		tx, _ := db.Begin()
		_, err := idx.Insert(tx, btree.EncodeKey(int64(i*2)), []byte("v"))
		must(err)
		must(tx.Commit())
	}
	var scanOps, insertOps atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// 4 scanners over random ranges.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := int64(rng.Intn(2 * n))
				tx, err := db.Begin()
				if err != nil {
					return
				}
				_, err = idx.Search(tx, btree.EncodeRange(lo, lo+100), iso)
				if err != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
				scanOps.Add(1)
			}
		}(int64(s + 1))
	}
	// 4 writers inserting odd keys (inside scanned ranges).
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(rng.Intn(2*n))*2 + 1
				tx, err := db.Begin()
				if err != nil {
					return
				}
				if _, err := idx.Insert(tx, btree.EncodeKey(k), []byte("w")); err != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
				insertOps.Add(1)
			}
		}(int64(w + 1))
	}
	time.Sleep(*durFlag)
	close(stop)
	wg.Wait()
	secs := durFlag.Seconds()
	return float64(scanOps.Load()) / secs, float64(insertOps.Load()) / secs, idx.TreeStats().PredicateBlocks
}
