// Command gistdump inspects a file-backed database directory: it prints the
// catalog, the write-ahead log (with the Table 1 record types), and the
// structure of each index, and verifies the structural invariants.
//
// Usage:
//
//	gistdump -dir /path/to/db [-log] [-tree] [-check]
//
// The tool opens the database read-only in effect (it runs restart recovery
// like any opener, then only reads).
package main

import (
	"flag"
	"fmt"
	"os"

	gistdb "repro"
	"repro/internal/btree"
	"repro/internal/wal"
)

var (
	dirFlag   = flag.String("dir", "", "database directory (required)")
	logFlag   = flag.Bool("log", false, "dump the write-ahead log")
	treeFlag  = flag.Bool("tree", true, "summarize each index's structure")
	checkFlag = flag.Bool("check", true, "verify structural invariants")
	demoFlag  = flag.Bool("demo", false, "populate a demo database in -dir first")
)

func main() {
	flag.Parse()
	if *dirFlag == "" {
		fmt.Fprintln(os.Stderr, "gistdump: -dir is required")
		os.Exit(2)
	}
	if *demoFlag {
		makeDemo(*dirFlag)
	}
	db, err := gistdb.Open(gistdb.Options{Dir: *dirFlag})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gistdump:", err)
		os.Exit(1)
	}
	defer db.Close()

	names, err := db.IndexNames()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gistdump: catalog:", err)
		os.Exit(1)
	}
	fmt.Printf("catalog: %d index(es): %v\n", len(names), names)

	if *logFlag {
		dumpLog(db)
	}
	if *treeFlag || *checkFlag {
		for _, name := range names {
			// The dump tool only needs structural access; B-tree ops
			// satisfy the interface for traversal and the checker
			// uses the stored predicates verbatim. For non-B-tree
			// indexes the containment check may not apply; report
			// and continue.
			idx, err := db.OpenIndex(name, btree.Ops{})
			if err != nil {
				fmt.Printf("index %q: open failed: %v\n", name, err)
				continue
			}
			rep, err := idx.Check()
			if err != nil {
				fmt.Printf("index %q: check: %v (non-btree extension?)\n", name, err)
				continue
			}
			fmt.Printf("index %q: anchor=%d root=%d height=%d nodes=%d leaves=%d entries=%d marked=%d orphans=%d\n",
				name, idx.Anchor(), rep.Root, rep.Height, rep.Nodes, rep.Leaves, rep.Entries, rep.Marked, rep.Orphans)
		}
	}
}

func dumpLog(db *gistdb.DB) {
	counts := make(map[wal.RecType]int)
	total := 0
	db.WAL().Scan(1, func(r *wal.Record) bool {
		counts[r.Type]++
		total++
		fmt.Printf("  %s\n", r)
		return true
	})
	fmt.Printf("log: %d records\n", total)
	for t, n := range counts {
		fmt.Printf("  %-28s %d\n", t, n)
	}
}

func makeDemo(dir string) {
	db, err := gistdb.Open(gistdb.Options{Dir: dir, MaxEntries: 8})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gistdump: demo:", err)
		os.Exit(1)
	}
	idx, err := db.CreateIndex("demo", btree.Ops{})
	if err == nil {
		for i := 0; i < 200; i++ {
			tx, _ := db.Begin()
			idx.Insert(tx, btree.EncodeKey(int64(i)), []byte(fmt.Sprintf("row %d", i)))
			tx.Commit()
		}
	}
	db.Close()
}
