// Command benchjson converts `go test -bench` text output (plus an optional
// gistbench metrics snapshot) into one machine-readable JSON document, so CI
// can archive a BENCH_wal.json per commit and the perf trajectory of the WAL
// pipeline stays trackable without scraping logs.
//
// Usage:
//
//	go test -bench BenchmarkWAL ./internal/wal/ | tee bench.txt
//	gistbench -exp metrics -json > metrics.json
//	benchjson -bench bench.txt -metrics metrics.json > BENCH_wal.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchResult struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"` // the -cpu value of the run
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Extra      map[string]float64 `json:"extra,omitempty"` // custom b.ReportMetric values
}

type document struct {
	Benchmarks []benchResult    `json:"benchmarks"`
	Metrics    map[string]int64 `json:"metrics,omitempty"`
	// Latencies regroups the metrics snapshot's histogram-derived keys
	// (name_count/_p50/_p95/_p99/_max) into one nested object per
	// histogram, so trend dashboards read latency distributions without
	// re-deriving the key scheme.
	Latencies map[string]map[string]int64 `json:"latencies,omitempty"`
	Maint     any                         `json:"maint,omitempty"`
	Cancel    any                         `json:"cancel,omitempty"`
	Readscale any                         `json:"readscale,omitempty"`
	Restart   any                         `json:"restart,omitempty"`
	Repl      any                         `json:"repl,omitempty"`
}

// histSuffixes are the derived keys a stats.Histogram emits per base name.
var histSuffixes = []string{"_count", "_p50", "_p95", "_p99", "_max"}

// foldLatencies extracts histogram-derived keys from a flat metrics snapshot
// into nested per-histogram objects. A name is treated as a histogram base
// only when its full derived-key set is present, so plain counters that
// merely end in _count (or _max) never fold.
func foldLatencies(metrics map[string]int64) map[string]map[string]int64 {
	out := make(map[string]map[string]int64)
	for name := range metrics {
		base, ok := strings.CutSuffix(name, "_count")
		if !ok {
			continue
		}
		all := true
		for _, suf := range histSuffixes {
			if _, present := metrics[base+suf]; !present {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		group := make(map[string]int64, len(histSuffixes))
		for _, suf := range histSuffixes {
			group[strings.TrimPrefix(suf, "_")] = metrics[base+suf]
		}
		out[base] = group
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func main() {
	benchPath := flag.String("bench", "", "file with `go test -bench` output (default stdin)")
	metricsPath := flag.String("metrics", "", "optional gistbench -exp metrics -json snapshot to embed")
	maintPath := flag.String("maint", "", "optional gistbench -exp maint -json soak snapshot to embed")
	cancelPath := flag.String("cancel", "", "optional gistbench -exp cancel -json soak snapshot to embed")
	readscalePath := flag.String("readscale", "", "optional gistbench -exp readscale -json soak snapshot to embed")
	restartPath := flag.String("restart", "", "optional gistbench -exp restart -json soak snapshot to embed")
	replPath := flag.String("repl", "", "optional gistbench -exp repl -json soak snapshot to embed")
	flag.Parse()

	in := os.Stdin
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		fatalIf(err)
		defer f.Close()
		in = f
	}

	var doc document
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		if r, ok := parseBenchLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	fatalIf(sc.Err())

	if *metricsPath != "" {
		raw, err := os.ReadFile(*metricsPath)
		fatalIf(err)
		fatalIf(json.Unmarshal(raw, &doc.Metrics))
		doc.Latencies = foldLatencies(doc.Metrics)
	}
	if *maintPath != "" {
		raw, err := os.ReadFile(*maintPath)
		fatalIf(err)
		fatalIf(json.Unmarshal(raw, &doc.Maint))
	}
	if *cancelPath != "" {
		raw, err := os.ReadFile(*cancelPath)
		fatalIf(err)
		fatalIf(json.Unmarshal(raw, &doc.Cancel))
	}
	if *readscalePath != "" {
		raw, err := os.ReadFile(*readscalePath)
		fatalIf(err)
		fatalIf(json.Unmarshal(raw, &doc.Readscale))
	}
	if *restartPath != "" {
		raw, err := os.ReadFile(*restartPath)
		fatalIf(err)
		fatalIf(json.Unmarshal(raw, &doc.Restart))
	}
	if *replPath != "" {
		raw, err := os.ReadFile(*replPath)
		fatalIf(err)
		fatalIf(json.Unmarshal(raw, &doc.Repl))
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	fatalIf(err)
	fmt.Println(string(out))
}

// parseBenchLine parses one standard benchmark result line:
//
//	BenchmarkWALAppend-16   964159   962.5 ns/op   24.00 fsyncs
//
// The suffix after the last '-' is the GOMAXPROCS of the run (absent for
// -cpu 1). Fields after ns/op come in value-unit pairs from b.ReportMetric.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r.Iterations = iters
	// Remaining fields are value-unit pairs; ns/op is required.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
			seenNs = true
			continue
		}
		if r.Extra == nil {
			r.Extra = make(map[string]float64)
		}
		r.Extra[fields[i+1]] = v
	}
	return r, seenNs
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
