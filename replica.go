// Replica facade: a streaming read replica over the log-shipping subsystem
// (internal/repl), and its promotion into a full read-write DB.
//
// A ReplicaDB is "crash recovery that never ends": an in-memory engine whose
// only writer is the replication stream. Shipped records are appended to the
// replica's own log verbatim and repeated through restart's redo machinery;
// between batches the replica holds a state some crash-restart of the
// primary could have produced, and that is the state reads observe. Reads
// run as read-only transactions (no logging — the replica log belongs to the
// stream) under the receiver's apply gate, with a dirty-insert filter so
// records of transactions whose commit has not yet been shipped stay
// invisible.
//
// Promote turns the replica into a primary: the stream is drained, in-flight
// transactions from the shipped history are rolled back (CLRs written to the
// now read-write replica log), and the same parts — disk, log, pool, trees —
// reassemble into a DB that accepts writes and can itself ship its log.
package gistdb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/buffer"
	"repro/internal/check"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/repl"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// ErrPromoted is returned by replica operations after Promote has flipped
// the replica into a primary.
var ErrPromoted = repl.ErrPromoted

// ReplicaDB is a streaming read replica: an in-memory engine fed by a
// primary's log-shipping stream, serving read-only transactions at a bounded
// lag behind the primary, promotable on failover.
type ReplicaDB struct {
	opts  Options
	mem   *storage.MemDisk
	disk  storage.Manager
	log   *wal.Log
	pool  *buffer.Pool
	locks *lock.Manager
	preds *predicate.Manager
	tm    *txn.Manager
	heap  *heap.File
	recv  *repl.Receiver

	mu       sync.Mutex
	indexes  map[string]*ReplicaIndex
	closed   bool
	promoted bool
}

// OpenReplica starts a replica of the primary reachable through dial (called
// once per connect and reconnect; use repl-framed transports such as the
// primary DB's Shipper over net.Pipe or TCP). The replica is always
// in-memory — its durability is the primary's log — so opts.Dir must be
// empty. Streaming begins immediately; use WaitApplied to rendezvous with a
// known primary LSN before opening indexes.
func OpenReplica(opts Options, dial func() (io.ReadWriteCloser, error)) (*ReplicaDB, error) {
	if opts.Dir != "" {
		return nil, errors.New("gistdb: replicas are in-memory (Options.Dir must be empty)")
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = 1024
	}
	r := &ReplicaDB{
		opts:    opts,
		mem:     storage.NewMemDisk(),
		log:     wal.NewReplicaLog(0),
		locks:   lock.NewManager(),
		preds:   predicate.NewManager(),
		indexes: make(map[string]*ReplicaIndex),
	}
	r.disk = r.mem
	if opts.IOLatency > 0 {
		r.disk = storage.NewSlowDisk(r.mem, opts.IOLatency)
	}
	r.pool = buffer.New(r.disk, opts.PoolPages, r.log)
	r.tm = txn.NewManager(r.log, r.locks, r.preds)
	r.heap = heap.New(r.pool)
	r.heap.RegisterUndo(r.tm)
	r.recv = repl.NewReceiver(repl.ReceiverDeps{
		Log:     r.log,
		Pool:    r.pool,
		Disk:    r.mem, // snapshot loads install page images under the pool
		TM:      r.tm,
		Workers: opts.RecoveryWorkers,
	}, dial)
	r.recv.Start()
	return r, nil
}

// AppliedLSN is the LSN through which the replica has repeated history.
func (r *ReplicaDB) AppliedLSN() page.LSN { return r.recv.AppliedLSN() }

// Lag is the primary's last reported flushed watermark minus the applied
// LSN: how far (in log positions) reads trail the primary's durable state.
func (r *ReplicaDB) Lag() page.LSN { return r.recv.Lag() }

// WaitApplied blocks until the replica has applied through lsn, ctx fires,
// or the stream dies with a terminal error.
func (r *ReplicaDB) WaitApplied(ctx context.Context, lsn page.LSN) error {
	return r.recv.WaitApplied(ctx, lsn)
}

// Err returns the stream's terminal error, if any (a replica that must be
// rebuilt from a fresh OpenReplica reports repl.ErrResyncRequired here).
func (r *ReplicaDB) Err() error { return r.recv.Err() }

// Metrics merges the replica engine's counter registries, including the
// receiver's repl.* counters (with the repl.apply_lag histogram), the
// continuous-redo applier's recovery.* registry, and the apply-lag gauge.
func (r *ReplicaDB) Metrics() map[string]int64 {
	return stats.Merged(
		r.recv.Metrics(),
		r.recv.ApplierMetrics(),
		r.tm.Metrics(),
		r.locks.Metrics(),
		r.preds.Metrics(),
		r.pool.Metrics(),
		r.log.Metrics(),
		storage.MetricsOf(r.disk),
		latch.Metrics(),
		gist.Metrics(),
	)
}

// OpenIndex opens an index replicated from the primary, by catalog name.
// The catalog entry must already have been applied (WaitApplied past the
// primary LSN of its CreateIndex first).
func (r *ReplicaDB) OpenIndex(name string, ops Ops) (*ReplicaIndex, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if ix, ok := r.indexes[name]; ok {
		return ix, nil
	}
	// The apply gate freezes the catalog page and the anchor while we read
	// one and pin the other.
	r.recv.RLock()
	defer r.recv.RUnlock()
	anchor, err := readCatalogAt(r.pool, catalogPage, name)
	if err != nil {
		return nil, err
	}
	cfg := gist.Config{
		Ops:               ops,
		MaxEntries:        r.opts.MaxEntries,
		ParentLSNOpt:      r.opts.ParentLSNOpt,
		OptimisticReads:   r.opts.OptimisticReads == OptimisticOn,
		OptimisticRetries: r.opts.OptimisticRetries,
	}
	tree, err := gist.Open(r.pool, r.tm, cfg, anchor)
	if err != nil {
		return nil, err
	}
	ix := &ReplicaIndex{db: r, tree: tree, name: name}
	r.indexes[name] = ix
	return ix, nil
}

// Begin starts a read-only transaction. Replica transactions never log;
// they take locks and predicates for isolation against other local readers,
// but the stream does not respect them — each individual read observes an
// atomic log-prefix state (the apply gate), while repeatable reads across
// batches are not guaranteed. ReadCommitted is the natural level here.
func (r *ReplicaDB) Begin() (*ReplicaTx, error) {
	r.mu.Lock()
	bad := r.closed || r.promoted
	r.mu.Unlock()
	if bad {
		return nil, ErrPromoted
	}
	t, err := r.tm.BeginReadOnly()
	if err != nil {
		return nil, err
	}
	return &ReplicaTx{db: r, inner: t}, nil
}

// Promote flips the replica into a primary and returns the resulting
// read-write DB, which owns the replica's engine parts from here on. The
// stream is stopped, the transaction-id counter advanced past everything in
// the shipped history, and the in-flight transactions of that history —
// exactly restart's losers — are rolled back through the registered undo
// handlers. Indexes already open on the replica carry over under the same
// names; others open normally via DB.OpenIndex.
//
// The ReplicaDB is closed by promotion; subsequent replica operations
// return ErrPromoted.
func (r *ReplicaDB) Promote() (*DB, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if r.promoted {
		r.mu.Unlock()
		return nil, ErrPromoted
	}
	r.promoted = true
	r.mu.Unlock()

	if _, err := r.recv.Promote(func() error {
		gist.RegisterRecoveryHandlers(r.tm, r.pool)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("gistdb: promote: %w", err)
	}

	db := &DB{
		opts:    r.opts,
		disk:    r.disk,
		mem:     r.mem,
		log:     r.log,
		pool:    r.pool,
		locks:   r.locks,
		preds:   r.preds,
		tm:      r.tm,
		heap:    r.heap,
		indexes: make(map[string]*Index),
		catalog: catalogPage,
	}
	r.mu.Lock()
	for name, rix := range r.indexes {
		db.indexes[name] = &Index{db: db, tree: rix.tree, name: name}
	}
	r.closed = true
	r.mu.Unlock()
	db.startMaintenance()
	return db, nil
}

// Close stops streaming and releases the replica. A promoted replica's
// parts live on in the returned DB; Close after Promote is a no-op.
func (r *ReplicaDB) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	ixs := make([]*ReplicaIndex, 0, len(r.indexes))
	for _, ix := range r.indexes {
		ixs = append(ixs, ix)
	}
	r.mu.Unlock()
	r.recv.Stop()
	for _, ix := range ixs {
		ix.tree.Close()
	}
	return nil
}

// ReplicaTx is a read-only transaction on a replica.
type ReplicaTx struct {
	db    *ReplicaDB
	inner *txn.Txn
	done  bool
}

// ID returns the transaction identifier (drawn from the read-only id space,
// disjoint from every id the shipped history can contain).
func (tx *ReplicaTx) ID() uint64 { return uint64(tx.inner.ID()) }

// Close ends the transaction, releasing its locks and predicates.
// Idempotent.
func (tx *ReplicaTx) Close() error {
	if tx.done {
		return nil
	}
	tx.done = true
	if err := tx.inner.Abort(); err != nil && !errors.Is(err, ErrNotActive) {
		return err
	}
	tx.db.mu.Lock()
	for _, ix := range tx.db.indexes {
		ix.tree.TxnFinished(tx.inner.ID())
	}
	tx.db.mu.Unlock()
	return nil
}

// ReplicaIndex is a read-only view of one replicated index.
type ReplicaIndex struct {
	db   *ReplicaDB
	tree *gist.Tree
	name string
}

// Name returns the index's catalog name.
func (ix *ReplicaIndex) Name() string { return ix.name }

// Anchor returns the index's anchor page id.
func (ix *ReplicaIndex) Anchor() page.PageID { return ix.tree.Anchor() }

// Search returns all committed entries whose keys are consistent with
// query. The whole search runs under the apply gate, so it observes one
// atomic log-prefix state; entries inserted by transactions whose commit
// has not yet been shipped are filtered out.
func (ix *ReplicaIndex) Search(tx *ReplicaTx, query []byte, iso Isolation) ([]SearchResult, error) {
	ix.db.recv.RLock()
	defer ix.db.recv.RUnlock()
	res, err := ix.tree.Search(tx.inner, query, iso)
	if err != nil {
		return nil, err
	}
	return ix.filterVisible(res), nil
}

// SearchCtx is Search honoring ctx at every node-visit boundary.
func (ix *ReplicaIndex) SearchCtx(ctx context.Context, tx *ReplicaTx, query []byte, iso Isolation) ([]SearchResult, error) {
	ix.db.recv.RLock()
	defer ix.db.recv.RUnlock()
	res, err := ix.tree.SearchCtx(ctx, tx.inner, query, iso)
	if err != nil {
		return nil, err
	}
	return ix.filterVisible(res), nil
}

func (ix *ReplicaIndex) filterVisible(res []SearchResult) []SearchResult {
	out := res[:0]
	for _, sr := range res {
		if ix.db.recv.Visible(sr.RID) {
			out = append(out, sr)
		}
	}
	return out
}

// Fetch reads the data record a search hit points at. It returns
// ErrNoRecord for records not (or no longer) committed in the shipped
// history — a later batch may physically remove an aborted transaction's
// record that an earlier Search returned.
func (ix *ReplicaIndex) Fetch(rid RID) ([]byte, error) {
	ix.db.recv.RLock()
	defer ix.db.recv.RUnlock()
	if !ix.db.recv.Visible(rid) {
		return nil, ErrNoRecord
	}
	return ix.db.heap.Read(rid)
}

// OpenCursor starts a scan. Replica cursors are materialized: the full
// result set is captured under the apply gate at open (one atomic
// log-prefix state), then served incrementally — a live suspended traversal
// cannot be left parked on pages the stream may reorganize or free, because
// the applier does not respect signaling locks.
func (ix *ReplicaIndex) OpenCursor(tx *ReplicaTx, query []byte, iso Isolation) (*ReplicaCursor, error) {
	res, err := ix.Search(tx, query, iso)
	if err != nil {
		return nil, err
	}
	return &ReplicaCursor{results: res}, nil
}

// ReplicaCursor iterates a materialized replica result set.
type ReplicaCursor struct {
	results []SearchResult
	pos     int
}

// Next returns the next matching entry; ok is false when exhausted.
func (c *ReplicaCursor) Next() (SearchResult, bool, error) {
	if c.pos >= len(c.results) {
		return SearchResult{}, false, nil
	}
	sr := c.results[c.pos]
	c.pos++
	return sr, true, nil
}

// Close releases the cursor. Materialized cursors hold no engine state, so
// this is a no-op kept for symmetry with Cursor.
func (c *ReplicaCursor) Close() {}

// Check verifies the replicated index's structural invariants at the
// current applied state (held still by the apply gate for the duration).
func (ix *ReplicaIndex) Check() (*check.Report, error) {
	ix.db.recv.RLock()
	defer ix.db.recv.RUnlock()
	c := &check.Checker{
		Pool:   ix.db.pool,
		Ops:    ix.tree.Ops(),
		Anchor: ix.tree.Anchor(),
		MaxNSN: ix.db.log.LastLSN(),
	}
	return c.Check()
}
