// Package gistdb is a transactional, recoverable Generalized Search Tree
// storage engine: a faithful, complete implementation of Kornacker, Mohan
// and Hellerstein, "Concurrency and Recovery in Generalized Search Trees"
// (SIGMOD 1997).
//
// A DB bundles a page store, a write-ahead log, a buffer pool, lock,
// predicate and transaction managers, a heap file for data records, and any
// number of GiST indexes over the heap. Indexes are specialized to concrete
// access methods by an Ops extension — B-trees (package btree) and R-trees
// (package rtree) ship with the library; supplying the four extension
// methods of [HNP95] yields a new access method with full concurrency,
// repeatable-read isolation and crash recovery inherited from the engine.
//
// Concurrency control follows the paper: rightlinks plus node sequence
// numbers drawn from the log's LSN counter detect and compensate for
// concurrent node splits; no node latch is held across an I/O. Isolation
// combines two-phase record locks with node-attached predicate locks;
// deletion is logical with background garbage collection. Recovery is
// ARIES-style with page-oriented redo, logical undo, and structure
// modifications as nested top actions.
//
// Basic use:
//
//	db, _ := gistdb.Open(gistdb.Options{}) // in-memory
//	idx, _ := db.CreateIndex("points", rtree.Ops{})
//	tx, _ := db.Begin()
//	rid, _ := idx.Insert(tx, rtree.EncodePoint(1, 2), []byte("payload"))
//	hits, _ := idx.Search(tx, rtree.EncodeRect(...), gistdb.RepeatableRead)
//	tx.Commit()
package gistdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/maintenance"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/recovery"
	"repro/internal/repl"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Re-exported core types so that callers need only this package plus an
// extension package.
type (
	// RID identifies a data record in the heap.
	RID = page.RID
	// Ops is the GiST extension interface ([HNP95]'s consistent, union,
	// penalty, pickSplit plus a key-equality query builder).
	Ops = gist.Ops
	// Isolation selects search isolation.
	Isolation = gist.Isolation
	// SearchResult is one (key, RID) hit.
	SearchResult = gist.SearchResult
	// MaintenanceOptions are the background-daemon pacing knobs
	// (internal/maintenance.Options re-exported).
	MaintenanceOptions = maintenance.Options
)

// Isolation levels.
const (
	// RepeatableRead is Degree 3: hybrid record + predicate locking.
	RepeatableRead = gist.RepeatableRead
	// ReadCommitted takes only short record locks; phantoms possible.
	ReadCommitted = gist.ReadCommitted
)

// Errors surfaced by the engine.
var (
	ErrDuplicate    = gist.ErrDuplicate
	ErrNotFound     = gist.ErrNotFound
	ErrAborted      = gist.ErrAborted
	ErrNoSuchIndex  = errors.New("gistdb: no such index")
	ErrIndexExists  = errors.New("gistdb: index already exists")
	ErrClosed       = errors.New("gistdb: database closed")
	ErrNoRecord     = heap.ErrNoRecord
	ErrNoSavepoint  = txn.ErrNoSavepoint
	ErrNotActive    = txn.ErrNotActive
	ErrLockDeadlock = lock.ErrDeadlock
	// ErrCommitPending is returned by Tx.CommitCtx when the deadline fired
	// after the commit record was published but before it became durable:
	// the commit cannot be withdrawn and completes in the background.
	ErrCommitPending = txn.ErrCommitPending
)

// CancelPolicy selects what happens to the enclosing transaction when a
// statement (an Index *Ctx method) is cancelled mid-flight.
type CancelPolicy int

const (
	// CancelStatement (the default) rolls back only the cancelled
	// statement's effects, by logical undo back to the statement's start
	// LSN; the transaction stays active and usable.
	CancelStatement CancelPolicy = iota
	// CancelAbort aborts the whole transaction when any of its statements
	// is cancelled.
	CancelAbort
)

// OptimisticMode gates the version-validated latch-free read path. The
// zero value is "on" so existing Options literals get the fast path.
type OptimisticMode int

const (
	// OptimisticOn (the default): search descents and cursor scans visit
	// nodes by snapshotting them under seqlock version validation,
	// falling back to shared latches per node after OptimisticRetries
	// consecutive failed validations.
	OptimisticOn OptimisticMode = iota
	// OptimisticOff forces the classic shared latch on every read visit.
	OptimisticOff
)

// Options configures Open.
type Options struct {
	// Dir is the directory for the page file and WAL; empty means a
	// purely in-memory database (still fully logged and recoverable
	// across SimulateCrash).
	Dir string
	// PoolPages is the buffer pool size in pages (default 1024).
	PoolPages int
	// MaxEntries caps entries per node (0 = page space only); small
	// values force deep trees for tests and demos.
	MaxEntries int
	// ParentLSNOpt enables the §10.1 counter-read optimization.
	ParentLSNOpt bool
	// OptimisticReads selects the read path's latching discipline
	// (default OptimisticOn: latch-free version-validated visits).
	OptimisticReads OptimisticMode
	// OptimisticRetries is how many consecutive failed validations a
	// node visit tolerates before falling back to the shared latch
	// (0 = default 3).
	OptimisticRetries int
	// IOLatency adds simulated latency to every page read/write,
	// making I/O cost visible to the concurrency experiments.
	IOLatency time.Duration
	// CancelPolicy selects statement-level rollback (the default) or
	// whole-transaction abort when an Index *Ctx statement is cancelled.
	CancelPolicy CancelPolicy
	// Maintenance, when non-nil, enables the background maintenance
	// subsystem (autonomous checkpointer, crash-atomic log truncator,
	// write-behind flusher, GC sweeper). The zero Options value gives
	// production defaults; set Manual to drive the daemons by explicit
	// ticks instead of goroutines.
	Maintenance *MaintenanceOptions
	// RecoveryWorkers is the fan-out of restart's parallel redo drain and
	// loser undo (0 = GOMAXPROCS; 1 = the serial single-goroutine order,
	// the determinism gate for byte-exact repro of a restart).
	RecoveryWorkers int
	// SlowOpThreshold pins every operation at least this slow into the
	// flight recorder's slow ring (see DB.SlowOps); 0 disables pinning.
	// The recent ring is always on regardless.
	SlowOpThreshold time.Duration
	// RecentOps sizes the flight recorder's recent ring
	// (0 = stats.DefaultRecentOps).
	RecentOps int
}

// DB is an open database.
type DB struct {
	opts   Options
	disk   storage.Manager
	mem    *storage.MemDisk // non-nil when in-memory (for crash simulation)
	log    *wal.Log
	pool   *buffer.Pool
	locks  *lock.Manager
	preds  *predicate.Manager
	tm     *txn.Manager
	heap   *heap.File
	maint    *maintenance.Manager // nil unless Options.Maintenance was set
	recReg   *stats.Registry      // restart metrics; nil if this open ran no recovery
	recorder *stats.Recorder      // always-on op flight recorder

	mu      sync.Mutex
	catalog page.PageID
	indexes map[string]*Index
	closed  bool

	shipMu  sync.Mutex
	shipper *repl.Shipper // lazily created by Shipper()
}

// catalogPage is the conventional id of the catalog page: the first page
// ever allocated by a fresh database.
const catalogPage page.PageID = 1

// Open creates or reopens a database. Reopening (or opening after a crash)
// runs full ARIES restart before returning.
func Open(opts Options) (*DB, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 1024
	}
	db := &DB{
		opts:     opts,
		locks:    lock.NewManager(),
		preds:    predicate.NewManager(),
		indexes:  make(map[string]*Index),
		catalog:  catalogPage,
		recorder: stats.NewRecorder(opts.RecentOps, opts.SlowOpThreshold),
	}
	fresh := true
	if opts.Dir == "" {
		db.mem = storage.NewMemDisk()
		db.disk = db.mem
		db.log = wal.NewMemLog()
	} else {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
		d, err := storage.OpenFileDisk(filepath.Join(opts.Dir, "pages.db"))
		if err != nil {
			return nil, err
		}
		l, err := wal.OpenFileLog(filepath.Join(opts.Dir, "wal.log"))
		if err != nil {
			d.Close()
			return nil, err
		}
		db.disk = d
		db.log = l
		fresh = l.LastLSN() == 0
	}
	if opts.IOLatency > 0 {
		db.disk = storage.NewSlowDisk(db.disk, opts.IOLatency)
	}
	db.pool = buffer.New(db.disk, opts.PoolPages, db.log)
	db.tm = txn.NewManager(db.log, db.locks, db.preds)
	db.heap = heap.New(db.pool)
	db.heap.RegisterUndo(db.tm)

	if fresh {
		if err := db.bootstrap(); err != nil {
			return nil, err
		}
	} else if err := db.recover(); err != nil {
		return nil, err
	}
	db.startMaintenance()
	return db, nil
}

// startMaintenance wires and launches the background daemons when the
// caller asked for them.
func (db *DB) startMaintenance() {
	if db.opts.Maintenance == nil {
		return
	}
	db.maint = maintenance.New(maintenance.Deps{
		Log:       db.log,
		TM:        db.tm,
		Pool:      db.pool,
		Disk:      db.disk,
		Trees:     db.openTrees,
		Pressure:  db.pressureScore,
		ReplBound: db.replBound,
	}, *db.opts.Maintenance)
	db.maint.Start()
}

// Shipper returns the database's log shipper, creating it on first use.
// Serve replica connections with Shipper().Serve (one per transport) or
// Shipper().ServeListener; while subscribers are live, background log
// truncation is clamped so they can always resume (see
// maintenance.Deps.ReplBound).
func (db *DB) Shipper() *repl.Shipper {
	db.shipMu.Lock()
	defer db.shipMu.Unlock()
	if db.shipper == nil {
		// The snapshot resync path lists allocated pages, a capability the
		// raw MemDisk has but latency/fault wrappers do not forward.
		disk := db.disk
		if db.mem != nil {
			disk = db.mem
		}
		db.shipper = repl.NewShipper(repl.PrimaryDeps{
			Log: db.log, Pool: db.pool, Disk: disk, TM: db.tm,
		})
	}
	return db.shipper
}

// replBound is the maintenance truncator's replication clamp: with no
// shipper (or no subscribers) there is none.
func (db *DB) replBound() page.LSN {
	db.shipMu.Lock()
	s := db.shipper
	db.shipMu.Unlock()
	if s == nil {
		return page.MaxLSN
	}
	return s.TruncationBound()
}

// openTrees snapshots the trees of the currently open indexes for the GC
// sweeper.
func (db *DB) openTrees() []*gist.Tree {
	db.mu.Lock()
	defer db.mu.Unlock()
	trees := make([]*gist.Tree, 0, len(db.indexes))
	for _, ix := range db.indexes {
		trees = append(trees, ix.tree)
	}
	return trees
}

// pressureScore is the monotone foreground-contention score backpressure
// watches: lock waits, buffer shard contention, and committers parked on
// the WAL queue.
func (db *DB) pressureScore() int64 {
	return db.locks.Metrics().Value("lock.waits") +
		db.pool.Metrics().Value("buffer.shard_contention") +
		db.log.Metrics().Value("wal.group_waits")
}

// Maintenance exposes the background maintenance manager (nil when
// Options.Maintenance was not set) for manual ticks and metrics.
func (db *DB) Maintenance() *maintenance.Manager { return db.maint }

// bootstrap formats a fresh database: just the catalog page.
func (db *DB) bootstrap() error {
	tx, err := db.tm.Begin()
	if err != nil {
		return err
	}
	if err := tx.BeginNTA(); err != nil {
		return err
	}
	f, err := db.pool.NewPage(0)
	if err != nil {
		return err
	}
	if f.ID() != catalogPage {
		return fmt.Errorf("gistdb: catalog allocated as page %d, want %d", f.ID(), catalogPage)
	}
	f.Page.SetFlags(page.FlagHeap)
	lsn := tx.Log(&wal.Record{Type: wal.RecGetPage, Pg: f.ID(), Level: 0})
	f.Page.SetLSN(lsn)
	tx.EndNTA()
	db.pool.Unpin(f, true, lsn)
	return tx.Commit()
}

// recover runs ARIES restart over the existing log and page store.
func (db *DB) recover() error {
	rec := &recovery.Recovery{
		Log: db.log, Pool: db.pool, Disk: db.disk, TM: db.tm,
		Workers: db.opts.RecoveryWorkers,
	}
	db.recReg = rec.Metrics()
	_, err := rec.Run(func() error {
		gist.RegisterRecoveryHandlers(db.tm, db.pool)
		return nil
	})
	return err
}

// catalogEntry encodes one catalog record: name -> anchor page.
func catalogEntry(name string, anchor page.PageID) []byte {
	b := make([]byte, 2+len(name)+4)
	b[0] = byte(len(name) >> 8)
	b[1] = byte(len(name))
	copy(b[2:], name)
	off := 2 + len(name)
	b[off] = byte(anchor >> 24)
	b[off+1] = byte(anchor >> 16)
	b[off+2] = byte(anchor >> 8)
	b[off+3] = byte(anchor)
	return b
}

func decodeCatalogEntry(b []byte) (string, page.PageID, error) {
	if len(b) < 6 {
		return "", 0, errors.New("gistdb: corrupt catalog entry")
	}
	n := int(b[0])<<8 | int(b[1])
	if len(b) != 2+n+4 {
		return "", 0, errors.New("gistdb: corrupt catalog entry")
	}
	name := string(b[2 : 2+n])
	off := 2 + n
	anchor := page.PageID(uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3]))
	return name, anchor, nil
}

// readCatalog scans the catalog page for an index's anchor.
func (db *DB) readCatalog(name string) (page.PageID, error) {
	return readCatalogAt(db.pool, db.catalog, name)
}

// readCatalogAt is readCatalog over explicit parts (the replica facade has
// no DB).
func readCatalogAt(pool *buffer.Pool, catalog page.PageID, name string) (page.PageID, error) {
	f, err := pool.Fetch(catalog)
	if err != nil {
		return 0, err
	}
	defer pool.Unpin(f, false, 0)
	f.Latch.Acquire(latch.S)
	defer f.Latch.Release(latch.S)
	for i := 0; i < f.Page.NumSlots(); i++ {
		b, err := f.Page.SlotBytes(i)
		if err != nil {
			continue
		}
		n, anchor, err := decodeCatalogEntry(b)
		if err != nil {
			continue
		}
		if n == name {
			return anchor, nil
		}
	}
	return 0, ErrNoSuchIndex
}

// IndexNames lists the indexes recorded in the catalog.
func (db *DB) IndexNames() ([]string, error) {
	f, err := db.pool.Fetch(db.catalog)
	if err != nil {
		return nil, err
	}
	defer db.pool.Unpin(f, false, 0)
	f.Latch.Acquire(latch.S)
	defer f.Latch.Release(latch.S)
	var names []string
	for i := 0; i < f.Page.NumSlots(); i++ {
		b, err := f.Page.SlotBytes(i)
		if err != nil {
			continue
		}
		if n, _, err := decodeCatalogEntry(b); err == nil {
			names = append(names, n)
		}
	}
	return names, nil
}

// CreateIndex creates a new GiST index specialized by ops and registers it
// in the catalog, durably.
func (db *DB) CreateIndex(name string, ops Ops) (*Index, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if _, ok := db.indexes[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrIndexExists, name)
	}
	if _, err := db.readCatalog(name); err == nil {
		return nil, fmt.Errorf("%w: %q", ErrIndexExists, name)
	}
	cfg := db.treeConfig(ops)
	tree, err := gist.Create(db.pool, db.tm, cfg)
	if err != nil {
		return nil, err
	}
	// Record the index in the catalog, logged as a heap-style insert so
	// it replays at restart.
	tx, err := db.tm.Begin()
	if err != nil {
		return nil, err
	}
	f, err := db.pool.Fetch(db.catalog)
	if err != nil {
		return nil, err
	}
	f.Latch.Acquire(latch.X)
	body := catalogEntry(name, tree.Anchor())
	slot, err := f.Page.InsertBytes(body)
	if err != nil {
		f.Latch.Release(latch.X)
		db.pool.Unpin(f, false, 0)
		tx.Abort()
		return nil, err
	}
	lsn := tx.Log(&wal.Record{
		Type: wal.RecHeapInsert,
		Pg:   db.catalog,
		RID:  page.RID{Page: db.catalog, Slot: uint16(slot)},
		Body: body,
	})
	f.Page.SetLSN(lsn)
	f.Latch.Release(latch.X)
	db.pool.Unpin(f, true, lsn)
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	ix := &Index{db: db, tree: tree, name: name}
	db.indexes[name] = ix
	return ix, nil
}

// treeConfig builds the tree configuration shared by CreateIndex and
// OpenIndex from the database options.
func (db *DB) treeConfig(ops Ops) gist.Config {
	return gist.Config{
		Ops:               ops,
		MaxEntries:        db.opts.MaxEntries,
		ParentLSNOpt:      db.opts.ParentLSNOpt,
		OptimisticReads:   db.opts.OptimisticReads == OptimisticOn,
		OptimisticRetries: db.opts.OptimisticRetries,
		Recorder:          db.recorder,
	}
}

// OpenIndex opens an existing index with the given extension methods (the
// ops must match those used at creation; the engine stores no semantics).
func (db *DB) OpenIndex(name string, ops Ops) (*Index, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if ix, ok := db.indexes[name]; ok {
		return ix, nil
	}
	anchor, err := db.readCatalog(name)
	if err != nil {
		return nil, err
	}
	cfg := db.treeConfig(ops)
	tree, err := gist.Open(db.pool, db.tm, cfg, anchor)
	if err != nil {
		return nil, err
	}
	ix := &Index{db: db, tree: tree, name: name}
	db.indexes[name] = ix
	return ix, nil
}

// Begin starts a transaction.
func (db *DB) Begin() (*Tx, error) {
	db.mu.Lock()
	closed := db.closed
	db.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	t, err := db.tm.Begin()
	if err != nil {
		return nil, err
	}
	return &Tx{db: db, inner: t}, nil
}

// Checkpoint takes a fuzzy checkpoint and flushes dirty pages, bounding
// restart work.
func (db *DB) Checkpoint() error {
	_, err := recovery.CheckpointBounded(db.tm, db.pool, db.disk, db.replBound())
	return err
}

// Stats exposes engine counters for monitoring and the experiments.
type Stats struct {
	Commits, Aborts           int64
	LockAcquisitions          int64
	LockWaits, Deadlocks      int64
	PredicateChecks           int64
	PredicatesExamined        int64
	BufferHits, BufferMisses  int64
	LogRecords, LogFlushes    int64
	ActiveTxns, LivePredicate int
}

// Stats returns a snapshot of engine counters.
func (db *DB) Stats() Stats {
	var s Stats
	s.Commits, s.Aborts = db.tm.Stats()
	s.LockAcquisitions, s.LockWaits, s.Deadlocks = db.locks.Stats()
	s.PredicateChecks, s.PredicatesExamined = db.preds.Stats()
	s.BufferHits, s.BufferMisses, _ = db.pool.Stats()
	s.LogRecords, s.LogFlushes = db.log.Stats()
	s.ActiveTxns = len(db.tm.ActiveTxns())
	s.LivePredicate, _ = db.preds.Counts()
	return s
}

// Metrics merges every subsystem's counter registry into one uniform map
// keyed by dotted metric names ("buffer.hits", "lock.waits", "disk.reads").
// It supersedes the per-manager Stats methods for monitoring; Stats remains
// as a typed convenience view over the same counters.
func (db *DB) Metrics() map[string]int64 {
	regs := []*stats.Registry{
		db.tm.Metrics(),
		db.locks.Metrics(),
		db.preds.Metrics(),
		db.pool.Metrics(),
		db.log.Metrics(),
		storage.MetricsOf(db.disk),
		// Latches are embedded in frames with no owning manager, so their
		// registry is process-global (as the old latch.GlobalStats was).
		latch.Metrics(),
		// Tree-operation latency histograms (gist.search_p50, ...), also
		// process-global.
		gist.Metrics(),
	}
	if db.maint != nil {
		regs = append(regs, db.maint.Metrics())
	}
	if db.recReg != nil {
		regs = append(regs, db.recReg)
	}
	db.shipMu.Lock()
	if db.shipper != nil {
		regs = append(regs, db.shipper.Metrics())
	}
	db.shipMu.Unlock()
	return stats.Merged(regs...)
}

// OpTrace is one flight-recorder entry: an operation's kind, latency, and
// per-phase wait breakdown. See stats.OpTrace for the field semantics.
type OpTrace = stats.OpTrace

// RecentOps returns the flight recorder's retained traces, oldest first:
// the last Options.RecentOps tracked operations (searches, inserts, deletes,
// cursor scans, commits) with their latency and phase breakdown. Always on;
// safe to call concurrently with running operations.
func (db *DB) RecentOps() []OpTrace { return db.recorder.Recent() }

// SlowOps returns the traces pinned by Options.SlowOpThreshold, oldest
// first. Empty when no threshold was set or nothing crossed it.
func (db *DB) SlowOps() []OpTrace { return db.recorder.Slow() }

// Close flushes everything and closes the database cleanly. Order matters:
// the pool's FlushAll runs WAL-rule forces through the log's group-commit
// flusher, so the log may be Closed (stopping that goroutine) only after
// the pool is done; log.Close then flushes its own tail synchronously.
func (db *DB) Close() error {
	// Stop replication sessions first: they read the log, whose flusher
	// goroutine Close is about to stop.
	db.shipMu.Lock()
	shipper := db.shipper
	db.shipMu.Unlock()
	if shipper != nil {
		shipper.Close()
	}
	// Stop the maintenance daemons before taking db.mu: an in-flight GC
	// tick may be inside the openTrees callback waiting on db.mu, and Stop
	// waits for the tick — taking the mutex first would deadlock.
	if db.maint != nil {
		db.maint.Stop()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	for _, ix := range db.indexes {
		ix.tree.Close()
	}
	if err := db.log.FlushAll(); err != nil {
		return err
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if err := db.log.Close(); err != nil {
		return err
	}
	return db.disk.Close()
}

// SimulateCrash models a hard crash of an in-memory database: the buffer
// pool and all unflushed log records vanish; the returned database is the
// post-restart instance over the surviving state. Indexes must be reopened
// (OpenIndex) with their extensions. File-backed databases crash for real:
// just drop the handle and Open the directory again.
func (db *DB) SimulateCrash() (*DB, error) {
	if db.mem == nil {
		return nil, errors.New("gistdb: SimulateCrash requires an in-memory database")
	}
	if db.maint != nil {
		db.maint.Stop() // the crashed instance's daemons die with it
	}
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()

	survivor := &DB{
		opts:     db.opts,
		locks:    lock.NewManager(),
		preds:    predicate.NewManager(),
		indexes:  make(map[string]*Index),
		catalog:  db.catalog,
		recorder: stats.NewRecorder(db.opts.RecentOps, db.opts.SlowOpThreshold),
	}
	survivor.mem = db.mem.Snapshot()
	survivor.disk = survivor.mem
	if db.opts.IOLatency > 0 {
		survivor.disk = storage.NewSlowDisk(survivor.mem, db.opts.IOLatency)
	}
	survivor.log = db.log.SurvivingLog()
	survivor.pool = buffer.New(survivor.disk, db.opts.PoolPages, survivor.log)
	survivor.tm = txn.NewManager(survivor.log, survivor.locks, survivor.preds)
	survivor.heap = heap.New(survivor.pool)
	survivor.heap.RegisterUndo(survivor.tm)
	if err := survivor.recover(); err != nil {
		return nil, err
	}
	survivor.startMaintenance()
	return survivor, nil
}

// WAL exposes the write-ahead log for inspection by the experiment harness
// and debugging tools. Treat it as read-only.
func (db *DB) WAL() *wal.Log { return db.log }

// SimulateCrashAtLSN is SimulateCrash with the surviving log truncated
// immediately after the given LSN, placing the crash point after a chosen
// record. It is honest only while no page whose pageLSN exceeds lsn has
// been written back (the experiment harness uses ample pools and no
// checkpoints to guarantee that).
func (db *DB) SimulateCrashAtLSN(lsn page.LSN) (*DB, error) {
	if db.mem == nil {
		return nil, errors.New("gistdb: SimulateCrashAtLSN requires an in-memory database")
	}
	if db.maint != nil {
		db.maint.Stop()
	}
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()

	survivor := &DB{
		opts:     db.opts,
		locks:    lock.NewManager(),
		preds:    predicate.NewManager(),
		indexes:  make(map[string]*Index),
		catalog:  db.catalog,
		recorder: stats.NewRecorder(db.opts.RecentOps, db.opts.SlowOpThreshold),
	}
	survivor.mem = db.mem.Snapshot()
	survivor.disk = survivor.mem
	if db.opts.IOLatency > 0 {
		survivor.disk = storage.NewSlowDisk(survivor.mem, db.opts.IOLatency)
	}
	survivor.log = db.log.TruncatedCopy(lsn)
	survivor.pool = buffer.New(survivor.disk, db.opts.PoolPages, survivor.log)
	survivor.tm = txn.NewManager(survivor.log, survivor.locks, survivor.preds)
	survivor.heap = heap.New(survivor.pool)
	survivor.heap.RegisterUndo(survivor.tm)
	if err := survivor.recover(); err != nil {
		return nil, err
	}
	survivor.startMaintenance()
	return survivor, nil
}

// DropIndex removes an index: its catalog entry is deleted durably and all
// of its pages (anchor and nodes) are freed for reuse. The index must not
// be in concurrent use.
func (db *DB) DropIndex(name string) error {
	// Pause maintenance before taking db.mu: an in-flight tick may be inside
	// the Trees callback waiting on db.mu, and Pause waits for the tick.
	// Pausing also keeps the GC sweeper off the tree being dropped.
	if db.maint != nil {
		db.maint.Pause()
		defer db.maint.Resume()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	ix, open := db.indexes[name]
	var tree *gist.Tree
	if open {
		tree = ix.tree
	} else {
		anchor, err := db.readCatalog(name)
		if err != nil {
			return err
		}
		t, err := gist.Open(db.pool, db.tm, gist.Config{Ops: dropOps{}}, anchor)
		if err != nil {
			return err
		}
		tree = t
	}

	tx, err := db.tm.Begin()
	if err != nil {
		return err
	}
	if err := tree.Destroy(tx); err != nil {
		tx.Abort()
		return err
	}
	// Remove the catalog entry (logged as a heap-style delete).
	f, err := db.pool.Fetch(db.catalog)
	if err != nil {
		tx.Abort()
		return err
	}
	f.Latch.Acquire(latch.X)
	removed := false
	for i := 0; i < f.Page.NumSlots(); i++ {
		b, err := f.Page.SlotBytes(i)
		if err != nil {
			continue
		}
		if n, _, err := decodeCatalogEntry(b); err == nil && n == name {
			old := append([]byte(nil), b...)
			if err := f.Page.KillSlot(i); err != nil {
				break
			}
			lsn := tx.Log(&wal.Record{
				Type: wal.RecHeapDelete,
				Pg:   db.catalog,
				RID:  page.RID{Page: db.catalog, Slot: uint16(i)},
				Body: old,
			})
			f.Page.SetLSN(lsn)
			db.pool.MarkDirty(f, lsn)
			removed = true
			break
		}
	}
	f.Latch.Release(latch.X)
	db.pool.Unpin(f, false, 0)
	if !removed {
		tx.Abort()
		return fmt.Errorf("%w: %q", ErrNoSuchIndex, name)
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	delete(db.indexes, name)
	// Quarantined pages drain when tree operations quiesce; force it
	// now (DropIndex requires quiescence anyway).
	tree.DrainQuarantine()
	return nil
}

// dropOps is a placeholder extension for opening an index only to destroy
// it: Destroy never evaluates predicates.
type dropOps struct{}

func (dropOps) Consistent(pred, query []byte) bool { return true }
func (dropOps) Union(a, b []byte) []byte           { return append([]byte(nil), b...) }
func (dropOps) Penalty(bp, key []byte) float64     { return 0 }
func (dropOps) PickSplit(preds [][]byte) []int     { return []int{0} }
func (dropOps) KeyQuery(key []byte) []byte         { return key }
