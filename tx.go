package gistdb

import (
	"repro/internal/gist"
	"repro/internal/lock"
	"repro/internal/txn"
)

// Tx is a transaction. A transaction is driven by one goroutine at a time;
// concurrent sessions each use their own transaction.
type Tx struct {
	db    *DB
	inner *txn.Txn

	// Open cursors and their positions recorded at savepoints (§10.2:
	// rollback to a savepoint restores the positions of open cursors).
	cursors []*Cursor
	marks   map[string][]cursorMark
}

type cursorMark struct {
	c *Cursor
	m gist.Mark
}

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return uint64(tx.inner.ID()) }

// Commit makes the transaction's effects durable and visible, releasing
// its locks and predicates.
func (tx *Tx) Commit() error {
	if err := tx.inner.Commit(); err != nil {
		return err
	}
	tx.finishTrees()
	return nil
}

// Abort rolls every effect of the transaction back (logical undo through
// the write-ahead log) and releases its locks and predicates.
func (tx *Tx) Abort() error {
	if err := tx.inner.Abort(); err != nil {
		return err
	}
	tx.finishTrees()
	return nil
}

func (tx *Tx) finishTrees() {
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	for _, ix := range tx.db.indexes {
		ix.tree.TxnFinished(tx.inner.ID())
	}
}

// Savepoint establishes a named rollback target within the transaction and
// records the positions of all open cursors (§10.2 of the paper).
func (tx *Tx) Savepoint(name string) error {
	if _, err := tx.inner.Savepoint(name); err != nil {
		return err
	}
	if tx.marks == nil {
		tx.marks = make(map[string][]cursorMark)
	}
	var ms []cursorMark
	for _, c := range tx.cursors {
		if !c.closed {
			ms = append(ms, cursorMark{c: c, m: c.inner.Mark()})
		}
	}
	tx.marks[name] = ms
	return nil
}

// RollbackTo undoes all updates made after the named savepoint and restores
// the positions open cursors had when it was established; the transaction
// stays active.
func (tx *Tx) RollbackTo(name string) error {
	if err := tx.inner.RollbackTo(name); err != nil {
		return err
	}
	for _, cm := range tx.marks[name] {
		if !cm.c.closed {
			cm.c.inner.Reset(cm.m)
		}
	}
	return nil
}

// LockRecord explicitly X-locks a data record ahead of an update — phase 1
// of the paper's insertion protocol. Index.Insert and Index.Delete do this
// implicitly; exposing it lets applications fix lock order across several
// records to reduce deadlocks.
func (tx *Tx) LockRecord(rid RID) error {
	return tx.inner.Lock(lock.ForRID(rid), lock.X)
}
