package gistdb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/gist"
	"repro/internal/lock"
	"repro/internal/stats"
	"repro/internal/txn"
)

// Tx is a transaction. A transaction is driven by one goroutine at a time;
// concurrent sessions each use their own transaction.
type Tx struct {
	db    *DB
	inner *txn.Txn

	// Open cursors and their positions recorded at savepoints (§10.2:
	// rollback to a savepoint restores the positions of open cursors).
	cursors []*Cursor
	marks   map[string][]cursorMark
}

type cursorMark struct {
	c *Cursor
	m gist.Mark
}

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return uint64(tx.inner.ID()) }

// Commit makes the transaction's effects durable and visible, releasing
// its locks and predicates.
func (tx *Tx) Commit() error {
	done := tx.traceCommit()
	if err := tx.inner.Commit(); err != nil {
		return err
	}
	done()
	tx.finishTrees()
	return nil
}

// traceCommit arms a flight-recorder trace for the commit; the returned
// function records it (call only on successful commit). A no-op returning a
// no-op in the statsoff build and for transactions that logged nothing —
// read-path commits carry no durability wait worth a ring slot, and skipping
// them keeps the search hot path free of the extra clock reads.
func (tx *Tx) traceCommit() func() {
	if !stats.Enabled || !tx.inner.Wrote() {
		return func() {}
	}
	start := time.Now().UnixNano()
	return func() {
		end := time.Now().UnixNano()
		tx.db.recorder.Record(&stats.OpTrace{
			Op:        "commit",
			Txn:       uint64(tx.inner.ID()),
			Start:     start,
			Duration:  end - start,
			FlushWait: tx.inner.FlushWait(),
		})
	}
}

// CommitCtx is Commit with a deadline on the durability wait. Three
// outcomes:
//
//   - ctx done before the commit record is published: ctx.Err() is
//     returned and the transaction is untouched — still active, still
//     abortable.
//   - ctx done after publication but before durability: ErrCommitPending
//     is returned; the commit can no longer be withdrawn and completes in
//     the background when the log force lands, at which point the
//     transaction's locks are released.
//   - durable in time (or already durable when the deadline is noticed):
//     committed, nil.
func (tx *Tx) CommitCtx(ctx context.Context) error {
	// If the commit goes pending, the per-tree bookkeeping must wait for
	// the background durability point — releasing it early would let dead
	// RIDs be reused while the deleting transaction can still become a
	// restart loser.
	tx.inner.SetDurableHook(tx.finishTrees)
	done := tx.traceCommit()
	if err := tx.inner.CommitCtx(ctx); err != nil {
		return err
	}
	done()
	tx.finishTrees()
	return nil
}

// Abort rolls every effect of the transaction back (logical undo through
// the write-ahead log) and releases its locks and predicates.
func (tx *Tx) Abort() error {
	if err := tx.inner.Abort(); err != nil {
		return err
	}
	tx.finishTrees()
	return nil
}

func (tx *Tx) finishTrees() {
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	for _, ix := range tx.db.indexes {
		ix.tree.TxnFinished(tx.inner.ID())
	}
}

// Savepoint establishes a named rollback target within the transaction and
// records the positions of all open cursors (§10.2 of the paper).
func (tx *Tx) Savepoint(name string) error {
	if _, err := tx.inner.Savepoint(name); err != nil {
		return err
	}
	if tx.marks == nil {
		tx.marks = make(map[string][]cursorMark)
	}
	var ms []cursorMark
	for _, c := range tx.cursors {
		if !c.closed {
			ms = append(ms, cursorMark{c: c, m: c.inner.Mark()})
		}
	}
	tx.marks[name] = ms
	return nil
}

// RollbackTo undoes all updates made after the named savepoint and restores
// the positions open cursors had when it was established; the transaction
// stays active.
func (tx *Tx) RollbackTo(name string) error {
	if err := tx.inner.RollbackTo(name); err != nil {
		return err
	}
	for _, cm := range tx.marks[name] {
		if !cm.c.closed {
			cm.c.inner.Reset(cm.m)
		}
	}
	return nil
}

// LockRecord explicitly X-locks a data record ahead of an update — phase 1
// of the paper's insertion protocol. Index.Insert and Index.Delete do this
// implicitly; exposing it lets applications fix lock order across several
// records to reduce deadlocks.
func (tx *Tx) LockRecord(rid RID) error {
	return tx.inner.Lock(lock.ForRID(rid), lock.X)
}

// LockRecordCtx is LockRecord with a cancellable wait: when ctx fires while
// the lock is queued the waiter removes itself and ctx.Err() is returned;
// no lock is held. If a grant raced the cancellation the lock is held and
// nil is returned.
func (tx *Tx) LockRecordCtx(ctx context.Context, rid RID) error {
	return tx.inner.LockCtx(ctx, lock.ForRID(rid), lock.X)
}

// isCancel reports whether err is (or wraps) a context cancellation.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// statement runs one mutating index statement with statement-level
// atomicity under cancellation: when fn returns a context error the
// statement's logged effects are removed by logical undo back to the
// statement's start LSN (CancelStatement) or the whole transaction is
// aborted (CancelAbort), per Options.CancelPolicy. Non-cancellation errors
// pass through untouched, preserving the engine's existing error contract
// (e.g. ErrDuplicate, deadlock-driven ErrAborted).
func (tx *Tx) statement(fn func() error) error {
	mark := tx.inner.LastLSN()
	err := fn()
	if err == nil || !isCancel(err) {
		return err
	}
	switch tx.db.opts.CancelPolicy {
	case CancelAbort:
		if aerr := tx.Abort(); aerr != nil && !errors.Is(aerr, ErrNotActive) {
			return fmt.Errorf("%v; abort after cancel: %w", err, aerr)
		}
	default: // CancelStatement
		if rerr := tx.inner.RollbackToLSN(mark); rerr != nil {
			// A failed partial undo leaves the transaction's effects
			// indeterminate; abort wholesale rather than let the caller
			// keep using it.
			tx.Abort()
			return fmt.Errorf("%v; statement rollback: %w", err, rerr)
		}
	}
	return err
}
