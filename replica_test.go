// End-to-end tests for WAL-shipping replication through the public facade:
// a primary DB serving its Shipper over in-memory pipes, replicas opened
// with OpenReplica.
package gistdb_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	gistdb "repro"
	"repro/internal/btree"
	"repro/internal/page"
)

// pipeDial returns a dial function wiring each connection to the primary's
// shipper over a fresh in-memory pipe.
func pipeDial(db *gistdb.DB) func() (io.ReadWriteCloser, error) {
	return func() (io.ReadWriteCloser, error) {
		c, srv := net.Pipe()
		go db.Shipper().Serve(srv)
		return c, nil
	}
}

// waitApplied waits (bounded) until the replica has applied through the
// primary's current durable frontier.
func waitApplied(t *testing.T, db *gistdb.DB, rep *gistdb.ReplicaDB) {
	t.Helper()
	if err := db.WAL().FlushAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rep.WaitApplied(ctx, db.WAL().FlushedLSN()); err != nil {
		t.Fatalf("WaitApplied(%d): %v", db.WAL().FlushedLSN(), err)
	}
}

func searchAll(t *testing.T, rep *gistdb.ReplicaDB, ix *gistdb.ReplicaIndex) map[int64]gistdb.RID {
	t.Helper()
	tx, err := rep.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	hits, err := ix.Search(tx, btree.EncodeRange(-1<<40, 1<<40), gistdb.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int64]gistdb.RID, len(hits))
	for _, h := range hits {
		out[btree.DecodeKey(h.Key)] = h.RID
	}
	return out
}

func TestReplicaServesCommittedReads(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := gistdb.OpenReplica(gistdb.Options{MaxEntries: 8}, pipeDial(db))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitApplied(t, db, rep)

	rix, err := rep.OpenIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	got := searchAll(t, rep, rix)
	if len(got) != 50 {
		t.Fatalf("replica sees %d keys, want 50", len(got))
	}
	// Fetch reads the replicated heap records.
	rid, ok := got[17]
	if !ok {
		t.Fatal("key 17 missing")
	}
	rec, err := rix.Fetch(rid)
	if err != nil || string(rec) != "v17" {
		t.Fatalf("Fetch = %q, %v", rec, err)
	}

	// An uncommitted insert, even once shipped, stays invisible (the
	// dirty-insert filter); the commit makes it appear.
	dirty, _ := db.Begin()
	if _, err := idx.Insert(dirty, btree.EncodeKey(1000), []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, db, rep)
	if got := searchAll(t, rep, rix); len(got) != 50 {
		t.Fatalf("uncommitted insert visible: %d keys, want 50", len(got))
	}
	if err := dirty.Commit(); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, db, rep)
	if got := searchAll(t, rep, rix); len(got) != 51 {
		t.Fatalf("committed insert not visible: %d keys, want 51", len(got))
	}

	// Structural invariants hold at the applied state.
	if _, err := rix.Check(); err != nil {
		t.Fatalf("replica invariants: %v", err)
	}

	// Cursor over the materialized result set.
	tx, _ := rep.Begin()
	cur, err := rix.OpenCursor(tx, btree.EncodeRange(0, 9), gistdb.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	cur.Close()
	tx.Close()
	if n != 10 {
		t.Fatalf("cursor visited %d entries, want 10", n)
	}

	m := rep.Metrics()
	if m["repl.apply_batches"] == 0 || m["repl.apply_records"] == 0 {
		t.Fatalf("apply counters missing: %v", m["repl.apply_batches"])
	}
	if db.Metrics()["repl.ship_batches"] == 0 {
		t.Fatal("primary ship counters missing")
	}
}

// flakyConn cuts the transport after a fixed number of Read calls. Over
// net.Pipe a frame arrives as two reads (header, payload), so an odd limit
// cuts mid-batch; any limit ≥ 2 still lets at least one complete frame
// through per connection, so the replica always makes progress between cuts.
type flakyConn struct {
	inner net.Conn
	mu    sync.Mutex
	reads int
}

var errFlakyCut = errors.New("flaky transport cut")

func (c *flakyConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	c.reads--
	left := c.reads
	c.mu.Unlock()
	if left < 0 {
		c.inner.Close()
		return 0, errFlakyCut
	}
	return c.inner.Read(p)
}

func (c *flakyConn) Write(p []byte) (int, error) { return c.inner.Write(p) }
func (c *flakyConn) Close() error                { return c.inner.Close() }

// TestReplicaReconnectConverges is the resume-equivalence test: a replica
// whose transport dies every few hundred bytes (often mid-batch) must
// converge to the same applied LSN and byte-identical page images as one
// that streamed without interruption.
func TestReplicaReconnectConverges(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	flakyDial := func() (io.ReadWriteCloser, error) {
		c, srv := net.Pipe()
		go db.Shipper().Serve(srv)
		return &flakyConn{inner: c, reads: 2 + rng.Intn(8)}, nil
	}

	flaky, err := gistdb.OpenReplica(gistdb.Options{MaxEntries: 8}, flakyDial)
	if err != nil {
		t.Fatal(err)
	}
	defer flaky.Close()
	stable, err := gistdb.OpenReplica(gistdb.Options{MaxEntries: 8}, pipeDial(db))
	if err != nil {
		t.Fatal(err)
	}
	defer stable.Close()

	for i := 0; i < 200; i++ {
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if i%20 == 19 {
			if err := db.WAL().FlushAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitApplied(t, db, flaky)
	waitApplied(t, db, stable)

	if a, b := flaky.AppliedLSN(), stable.AppliedLSN(); a != b {
		t.Fatalf("applied LSNs diverge: flaky %d, stable %d", a, b)
	}
	if flaky.Metrics()["repl.reconnects"] == 0 {
		t.Fatal("flaky transport never reconnected; the test exercised nothing")
	}

	// Byte-identical page images after both pools write back.
	if err := gistdb.ReplicaFlushPool(flaky); err != nil {
		t.Fatal(err)
	}
	if err := gistdb.ReplicaFlushPool(stable); err != nil {
		t.Fatal(err)
	}
	fm, sm := gistdb.ReplicaMem(flaky), gistdb.ReplicaMem(stable)
	fids, sids := fm.PageIDs(), sm.PageIDs()
	sort.Slice(fids, func(i, j int) bool { return fids[i] < fids[j] })
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	if len(fids) != len(sids) {
		t.Fatalf("allocated pages diverge: %d vs %d", len(fids), len(sids))
	}
	bufA := make([]byte, page.Size)
	bufB := make([]byte, page.Size)
	for i, id := range fids {
		if id != sids[i] {
			t.Fatalf("page id sets diverge at %d: %d vs %d", i, id, sids[i])
		}
		if err := fm.ReadPage(id, bufA); err != nil {
			t.Fatal(err)
		}
		if err := sm.ReadPage(id, bufB); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA, bufB) {
			t.Fatalf("page %d images diverge after reconnects", id)
		}
	}
}

// stallConn can freeze its Write side on command, simulating a replica
// whose acks stop flowing without disconnecting: the shipper's strict
// batch/ack alternation then freezes the session's acked LSN (at most one
// already-shipped batch still applies replica-side).
type stallConn struct {
	inner   net.Conn
	mu      sync.Mutex
	stalled chan struct{} // non-nil while stalled; closed to release
}

func (c *stallConn) Read(p []byte) (int, error) { return c.inner.Read(p) }
func (c *stallConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	ch := c.stalled
	c.mu.Unlock()
	if ch != nil {
		<-ch
	}
	return c.inner.Write(p)
}
func (c *stallConn) Close() error { return c.inner.Close() }

func (c *stallConn) stall() {
	c.mu.Lock()
	if c.stalled == nil {
		c.stalled = make(chan struct{})
	}
	c.mu.Unlock()
}

func (c *stallConn) release() {
	c.mu.Lock()
	if c.stalled != nil {
		close(c.stalled)
		c.stalled = nil
	}
	c.mu.Unlock()
}

// TestReplicaClampsLogTruncation: a stalled (lagging but connected) replica
// must hold the primary's log head so it can resume; releasing the stall
// lets both the replica and the truncator advance.
func TestReplicaClampsLogTruncation(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{
		MaxEntries:  8,
		Maintenance: &gistdb.MaintenanceOptions{Manual: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}

	var connMu sync.Mutex
	var conn *stallConn
	dial := func() (io.ReadWriteCloser, error) {
		c, srv := net.Pipe()
		go db.Shipper().Serve(srv)
		sc := &stallConn{inner: c}
		connMu.Lock()
		conn = sc
		connMu.Unlock()
		return sc, nil
	}

	insert := func(lo, n int) {
		t.Helper()
		for i := lo; i < lo+n; i++ {
			tx, _ := db.Begin()
			if _, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}

	insert(0, 30)
	rep, err := gistdb.OpenReplica(gistdb.Options{MaxEntries: 8}, dial)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitApplied(t, db, rep)
	ackedAtStall := rep.AppliedLSN()

	// Freeze the replica's consumption, then produce and checkpoint enough
	// that truncation would otherwise advance well past the stall point.
	connMu.Lock()
	conn.stall()
	connMu.Unlock()
	insert(30, 30)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Maintenance().TickCheckpoint(true); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Maintenance().TickTruncate(); err != nil {
		t.Fatal(err)
	}
	if base := db.WAL().Base(); base > ackedAtStall {
		t.Fatalf("truncation cut to %d, past the stalled subscriber's ack %d", base, ackedAtStall)
	}

	// Release: the replica's acks flow again, and a later truncation may
	// then pass the old stall point.
	connMu.Lock()
	conn.release()
	connMu.Unlock()
	waitApplied(t, db, rep)
	rix, err := rep.OpenIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	if got := searchAll(t, rep, rix); len(got) != 60 {
		t.Fatalf("replica sees %d keys after release, want 60", len(got))
	}
	// Wait until the primary has seen an ack past the stall point (acks
	// travel on their own cadence; the lag gauge is the observable).
	deadline := time.Now().Add(10 * time.Second)
	for db.Metrics()["repl.min_acked_lsn"] <= int64(ackedAtStall) {
		if time.Now().After(deadline) {
			t.Fatalf("min acked stuck at %d", db.Metrics()["repl.min_acked_lsn"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := db.Maintenance().TickCheckpoint(true); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Maintenance().TickTruncate(); err != nil {
		t.Fatal(err)
	}
	if base := db.WAL().Base(); base <= ackedAtStall {
		t.Fatalf("truncation still pinned at %d after the replica caught up", base)
	}
}

// TestReplicaSnapshotResync: a replica arriving after the primary truncated
// its log head is seeded with a full snapshot and then streams normally.
func TestReplicaSnapshotResync(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{
		MaxEntries:  8,
		Maintenance: &gistdb.MaintenanceOptions{Manual: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Maintenance().TickCheckpoint(true); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Maintenance().TickTruncate(); err != nil {
		t.Fatal(err)
	}
	if db.WAL().Base() == 0 {
		t.Fatal("log head did not move; snapshot path not exercised")
	}

	rep, err := gistdb.OpenReplica(gistdb.Options{MaxEntries: 8}, pipeDial(db))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitApplied(t, db, rep)
	if rep.Metrics()["repl.snapshot_loads"] != 1 {
		t.Fatalf("snapshot_loads = %d, want 1", rep.Metrics()["repl.snapshot_loads"])
	}

	rix, err := rep.OpenIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	if got := searchAll(t, rep, rix); len(got) != 40 {
		t.Fatalf("snapshot-seeded replica sees %d keys, want 40", len(got))
	}

	// The stream continues past the snapshot.
	tx, _ := db.Begin()
	if _, err := idx.Insert(tx, btree.EncodeKey(999), []byte("after-snap")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, db, rep)
	if got := searchAll(t, rep, rix); len(got) != 41 {
		t.Fatalf("post-snapshot stream lost: %d keys, want 41", len(got))
	}
	if _, err := rix.Check(); err != nil {
		t.Fatalf("replica invariants after snapshot resync: %v", err)
	}
}

// TestReplicaSnapshotResyncInFlight: the snapshot stream must start at the
// oldest in-flight transaction's first record, not at the flushed
// watermark, so the seeded replica's log/ATT/dirty-filter cover
// transactions that were open at snapshot time. The replica must (a) hide
// the uncommitted insert from reads even though the seed images already
// contain it, and (b) undo it at promotion.
func TestReplicaSnapshotResyncInFlight(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{
		MaxEntries:  8,
		Maintenance: &gistdb.MaintenanceOptions{Manual: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	insert := func(k int64) {
		t.Helper()
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(k), []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		insert(int64(i))
	}
	// An in-flight transaction straddling the snapshot: its records predate
	// the flushed watermark the snapshot is cut at, and it is still open
	// when the replica attaches.
	inflight, _ := db.Begin()
	if _, err := idx.Insert(inflight, btree.EncodeKey(777), []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 40; i++ {
		insert(int64(i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Maintenance().TickCheckpoint(true); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Maintenance().TickTruncate(); err != nil {
		t.Fatal(err)
	}
	if db.WAL().Base() == 0 {
		t.Fatal("log head did not move; snapshot path not exercised")
	}

	rep, err := gistdb.OpenReplica(gistdb.Options{MaxEntries: 8}, pipeDial(db))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitApplied(t, db, rep)
	if rep.Metrics()["repl.snapshot_loads"] != 1 {
		t.Fatalf("snapshot_loads = %d, want 1", rep.Metrics()["repl.snapshot_loads"])
	}

	rix, err := rep.OpenIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	got := searchAll(t, rep, rix)
	if len(got) != 40 {
		t.Fatalf("snapshot-seeded replica sees %d keys, want 40", len(got))
	}
	if _, leaked := got[777]; leaked {
		t.Fatal("uncommitted in-flight insert visible on snapshot-seeded replica")
	}

	// Failover: the in-flight transaction is exactly restart's loser — the
	// promoted replica must have undone it.
	ndb, err := rep.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer ndb.Close()
	nix, err := ndb.OpenIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := ndb.Begin()
	defer tx.Commit()
	hits, err := nix.Search(tx, btree.EncodeRange(-1<<40, 1<<40), gistdb.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 40 {
		t.Fatalf("promoted replica has %d entries, want 40 (in-flight txn must be undone)", len(hits))
	}
	for _, h := range hits {
		if btree.DecodeKey(h.Key) == 777 {
			t.Fatal("uncommitted insert survived promotion: loser not undone after snapshot resync")
		}
	}
	if _, err := nix.Check(); err != nil {
		t.Fatalf("promoted replica invariants: %v", err)
	}
	_ = inflight // still open on the primary; Close aborts it
}

// TestReplicaPromote: failover. The replica drains, rolls back in-flight
// transactions from the shipped history, and comes up as a read-write
// primary that accepts new transactions.
func TestReplicaPromote(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// An in-flight transaction at failover time: its inserts ship but its
	// commit never will. Promotion must roll it back.
	loser, _ := db.Begin()
	for i := 100; i < 105; i++ {
		if _, err := idx.Insert(loser, btree.EncodeKey(int64(i)), []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := gistdb.OpenReplica(gistdb.Options{MaxEntries: 8}, pipeDial(db))
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, db, rep)
	rix, err := rep.OpenIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	if got := searchAll(t, rep, rix); len(got) != 20 {
		t.Fatalf("replica sees %d keys before promote, want 20 committed", len(got))
	}

	// Failover: the primary is "dead" from here on (we only Close it).
	promoted, err := rep.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	if _, err := rep.Begin(); !errors.Is(err, gistdb.ErrPromoted) {
		t.Fatalf("replica Begin after promote: %v, want ErrPromoted", err)
	}

	// The open index carried over; the losers' keys are gone; new writes
	// land.
	pidx, err := promoted.OpenIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := promoted.Begin()
	if err != nil {
		t.Fatal(err)
	}
	hits, err := pidx.Search(tx, btree.EncodeRange(-1<<40, 1<<40), gistdb.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 20 {
		t.Fatalf("promoted primary sees %d keys, want 20 (losers rolled back)", len(hits))
	}
	if _, err := pidx.Insert(tx, btree.EncodeKey(500), []byte("post-promote")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := promoted.Begin()
	hits, err = pidx.Search(tx2, btree.EncodeRange(-1<<40, 1<<40), gistdb.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 21 {
		t.Fatalf("promoted primary sees %d keys after new write, want 21", len(hits))
	}
	if _, err := pidx.Check(); err != nil {
		t.Fatalf("promoted primary invariants: %v", err)
	}
	_ = loser // still open on the old primary; irrelevant after failover
}

// TestReplicaChurnConverges drives a concurrent insert/delete workload —
// the mix that leaves heap pages full of killed slots — and requires the
// replica to replay it in full. Regression: redo's EnsureSlot must compact
// a garbage-bearing page before growing the slot directory, exactly as the
// primary's original insert did; without that the replica diverges with a
// spurious page-full once a heap page cycles through enough deletes.
func TestReplicaChurnConverges(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{PoolPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("churn", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := gistdb.OpenReplica(gistdb.Options{PoolPages: 4096}, pipeDial(db))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	var wg sync.WaitGroup
	for gid := 0; gid < 4; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gid)))
			type kr struct {
				key int64
				rid gistdb.RID
			}
			var committed []kr
			next := int64(gid+1) << 32
			for i := 0; i < 800; i++ {
				tx, err := db.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				if rng.Intn(10) < 7 || len(committed) == 0 {
					key := next
					next++
					rid, err := idx.Insert(tx, btree.EncodeKey(key), []byte(fmt.Sprintf("v-%d", key)))
					if err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err != nil {
						continue
					}
					committed = append(committed, kr{key, rid})
				} else {
					j := rng.Intn(len(committed))
					e := committed[j]
					if err := idx.Delete(tx, btree.EncodeKey(e.key), e.rid); err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err != nil {
						continue
					}
					committed = append(committed[:j], committed[j+1:]...)
				}
			}
		}(gid)
	}
	wg.Wait()

	waitApplied(t, db, rep)

	ridx, err := rep.OpenIndex("churn", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	replicaKeys := searchAll(t, rep, ridx)

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Search(tx, btree.EncodeRange(-1<<62, 1<<62), gistdb.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(replicaKeys) {
		t.Fatalf("primary has %d keys, replica %d", len(hits), len(replicaKeys))
	}
	for _, h := range hits {
		key := btree.DecodeKey(h.Key)
		if _, ok := replicaKeys[key]; !ok {
			t.Fatalf("key %d on primary missing from replica", key)
		}
	}
	// Spot-check payloads through the replica's heap.
	n := 0
	for key, rid := range replicaKeys {
		got, err := ridx.Fetch(rid)
		if err != nil {
			t.Fatalf("fetch %d: %v", key, err)
		}
		if want := fmt.Sprintf("v-%d", key); string(got) != want {
			t.Fatalf("key %d payload = %q, want %q", key, got, want)
		}
		if n++; n >= 200 {
			break
		}
	}
}
