package gistdb

import (
	"context"

	"repro/internal/check"
	"repro/internal/gist"
	"repro/internal/page"
)

// Index is one GiST index over the database's heap.
type Index struct {
	db   *DB
	tree *gist.Tree
	name string
}

// Name returns the index's catalog name.
func (ix *Index) Name() string { return ix.name }

// Insert stores record in the heap and indexes it under key, returning the
// record's RID. The data record is X-locked before the tree insertion, as
// §6 of the paper requires.
func (ix *Index) Insert(tx *Tx, key, record []byte) (RID, error) {
	rid, err := ix.db.heap.Insert(tx.inner, record)
	if err != nil {
		return RID{}, err
	}
	if err := ix.tree.Insert(tx.inner, key, rid); err != nil {
		return RID{}, err
	}
	return rid, nil
}

// InsertCtx is Insert as a cancellable statement: ctx is honored at every
// blocking point (lock waits, frame loads, node-visit boundaries). On
// cancellation the statement's partial effects — the heap record and any
// logged tree updates — are rolled back per Options.CancelPolicy, and
// ctx.Err() is returned.
func (ix *Index) InsertCtx(ctx context.Context, tx *Tx, key, record []byte) (RID, error) {
	var rid RID
	err := tx.statement(func() error {
		r, err := ix.db.heap.InsertCtx(ctx, tx.inner, record)
		if err != nil {
			return err
		}
		rid = r
		return ix.tree.InsertCtx(ctx, tx.inner, key, rid)
	})
	if err != nil {
		return RID{}, err
	}
	return rid, nil
}

// InsertUnique is Insert with key uniqueness enforced (§8): ErrDuplicate is
// returned — repeatably, under Degree 3 — when the key already exists.
func (ix *Index) InsertUnique(tx *Tx, key, record []byte) (RID, error) {
	rid, err := ix.db.heap.Insert(tx.inner, record)
	if err != nil {
		return RID{}, err
	}
	if err := ix.tree.InsertUnique(tx.inner, key, rid); err != nil {
		return RID{}, err
	}
	return rid, nil
}

// InsertUniqueCtx is InsertUnique as a cancellable statement (see
// InsertCtx). ErrDuplicate is not a cancellation and passes through with
// the heap record still inserted, exactly as InsertUnique leaves it.
func (ix *Index) InsertUniqueCtx(ctx context.Context, tx *Tx, key, record []byte) (RID, error) {
	var rid RID
	err := tx.statement(func() error {
		r, err := ix.db.heap.InsertCtx(ctx, tx.inner, record)
		if err != nil {
			return err
		}
		rid = r
		return ix.tree.InsertUniqueCtx(ctx, tx.inner, key, rid)
	})
	if err != nil {
		return RID{}, err
	}
	return rid, nil
}

// IndexKey indexes an existing heap record under key without storing a new
// record (secondary-index style; several indexes can point at one RID).
func (ix *Index) IndexKey(tx *Tx, key []byte, rid RID) error {
	return ix.tree.Insert(tx.inner, key, rid)
}

// IndexKeyCtx is IndexKey as a cancellable statement (see InsertCtx).
func (ix *Index) IndexKeyCtx(ctx context.Context, tx *Tx, key []byte, rid RID) error {
	return tx.statement(func() error {
		return ix.tree.InsertCtx(ctx, tx.inner, key, rid)
	})
}

// Search returns all entries whose keys are consistent with query, at the
// requested isolation level. Under RepeatableRead the result set is
// phantom-protected until the transaction ends.
func (ix *Index) Search(tx *Tx, query []byte, iso Isolation) ([]SearchResult, error) {
	return ix.tree.Search(tx.inner, query, iso)
}

// SearchCtx is Search honoring ctx at every node-visit boundary and
// blocking wait. A cancelled search returns ctx.Err() promptly; being
// read-only it needs no rollback — record locks and predicates taken so
// far stay with the transaction, per two-phase locking.
func (ix *Index) SearchCtx(ctx context.Context, tx *Tx, query []byte, iso Isolation) ([]SearchResult, error) {
	return ix.tree.SearchCtx(ctx, tx.inner, query, iso)
}

// Cursor is an incremental scan over an index. Its position is recorded by
// Tx.Savepoint and restored by Tx.RollbackTo, as §10.2 of the paper
// requires of open cursors.
type Cursor struct {
	inner  *gist.Cursor
	ix     *Index
	closed bool
}

// OpenCursor starts an incremental search; call Next until ok is false, and
// Close when done (transaction end does not close cursors automatically).
func (ix *Index) OpenCursor(tx *Tx, query []byte, iso Isolation) (*Cursor, error) {
	gc, err := ix.tree.OpenCursor(tx.inner, query, iso)
	if err != nil {
		return nil, err
	}
	c := &Cursor{inner: gc, ix: ix}
	tx.cursors = append(tx.cursors, c)
	return c, nil
}

// OpenCursorCtx is OpenCursor with a context every subsequent Next checks
// at its node-visit boundary: once ctx fires, Next returns ctx.Err() until
// the cursor is closed.
func (ix *Index) OpenCursorCtx(ctx context.Context, tx *Tx, query []byte, iso Isolation) (*Cursor, error) {
	gc, err := ix.tree.OpenCursorCtx(ctx, tx.inner, query, iso)
	if err != nil {
		return nil, err
	}
	c := &Cursor{inner: gc, ix: ix}
	tx.cursors = append(tx.cursors, c)
	return c, nil
}

// Next returns the next matching entry; ok is false when exhausted.
func (c *Cursor) Next() (SearchResult, bool, error) {
	return c.inner.Next()
}

// Close releases the cursor's traversal state. Idempotent.
func (c *Cursor) Close() {
	if !c.closed {
		c.closed = true
		c.inner.Close()
	}
}

// Fetch reads the data record a search hit points at.
func (ix *Index) Fetch(rid RID) ([]byte, error) {
	return ix.db.heap.Read(rid)
}

// FetchCtx is Fetch honoring ctx while waiting for the record's page frame.
func (ix *Index) FetchCtx(ctx context.Context, rid RID) ([]byte, error) {
	return ix.db.heap.ReadCtx(ctx, rid)
}

// Delete logically deletes the index entry (key, rid) and the underlying
// heap record. The entry remains physically present (invisible) until the
// transaction commits and garbage collection removes it (§7).
func (ix *Index) Delete(tx *Tx, key []byte, rid RID) error {
	if err := ix.tree.Delete(tx.inner, key, rid); err != nil {
		return err
	}
	return ix.db.heap.Delete(tx.inner, rid)
}

// DeleteCtx is Delete as a cancellable statement (see InsertCtx): on
// cancellation the logical delete mark and the heap kill are rolled back
// per Options.CancelPolicy.
func (ix *Index) DeleteCtx(ctx context.Context, tx *Tx, key []byte, rid RID) error {
	return tx.statement(func() error {
		if err := ix.tree.DeleteCtx(ctx, tx.inner, key, rid); err != nil {
			return err
		}
		return ix.db.heap.DeleteCtx(ctx, tx.inner, rid)
	})
}

// DeleteEntry removes only the index entry, leaving the heap record in
// place (for records indexed by several indexes).
func (ix *Index) DeleteEntry(tx *Tx, key []byte, rid RID) error {
	return ix.tree.Delete(tx.inner, key, rid)
}

// DeleteEntryCtx is DeleteEntry as a cancellable statement (see InsertCtx).
func (ix *Index) DeleteEntryCtx(ctx context.Context, tx *Tx, key []byte, rid RID) error {
	return tx.statement(func() error {
		return ix.tree.DeleteCtx(ctx, tx.inner, key, rid)
	})
}

// GC garbage-collects committed logically deleted entries across the whole
// index and unlinks emptied nodes where safe (§7.1–§7.2). Run it
// periodically, as a DBMS would from a background maintenance task.
func (ix *Index) GC(tx *Tx) error {
	return ix.tree.GCAll(tx.inner)
}

// Check verifies the index's structural invariants (quiesced) and returns
// a summary report.
func (ix *Index) Check() (*check.Report, error) {
	c := &check.Checker{
		Pool:   ix.db.pool,
		Ops:    ix.tree.Ops(),
		Anchor: ix.tree.Anchor(),
		MaxNSN: ix.db.log.LastLSN(),
	}
	return c.Check()
}

// TreeStats exposes the tree's internal instrumentation counters.
type TreeStats struct {
	Searches, Inserts, Deletes    int64
	Splits, RootSplits            int64
	RightlinkChases, BPUpdates    int64
	GCRuns, GCEntries, NodeFrees  int64
	PredicateBlocks, LatchlessIOs int64
	LatchedIOs                    int64
}

// TreeStats returns a snapshot of the index's counters.
func (ix *Index) TreeStats() TreeStats {
	s := &ix.tree.Stats
	return TreeStats{
		Searches:        s.Searches.Load(),
		Inserts:         s.Inserts.Load(),
		Deletes:         s.Deletes.Load(),
		Splits:          s.Splits.Load(),
		RootSplits:      s.RootSplits.Load(),
		RightlinkChases: s.RightlinkChases.Load(),
		BPUpdates:       s.BPUpdates.Load(),
		GCRuns:          s.GCRuns.Load(),
		GCEntries:       s.GCEntries.Load(),
		NodeFrees:       s.NodeDeletes.Load(),
		PredicateBlocks: s.PredBlocks.Load(),
		LatchlessIOs:    s.LatchlessIOs.Load(),
		LatchedIOs:      s.LatchedIOs.Load(),
	}
}

// Anchor returns the index's anchor page id (its durable identity).
func (ix *Index) Anchor() page.PageID { return ix.tree.Anchor() }
