package gistdb_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	gistdb "repro"
	"repro/internal/btree"
	"repro/internal/rtree"
)

func openMem(t *testing.T) *gistdb.DB {
	t.Helper()
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rid, err := idx.Insert(tx, btree.EncodeKey(42), []byte("answer"))
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx.Search(tx, btree.EncodeRange(40, 45), gistdb.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].RID != rid {
		t.Fatalf("hits = %v", hits)
	}
	rec, err := idx.Fetch(hits[0].RID)
	if err != nil || string(rec) != "answer" {
		t.Fatalf("fetch = %q, %v", rec, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats(); got.Commits == 0 {
		t.Error("stats missing commit")
	}
}

func TestIndexLifecycleErrors(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	if _, err := db.CreateIndex("a", btree.Ops{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("a", btree.Ops{}); !errors.Is(err, gistdb.ErrIndexExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := db.OpenIndex("missing", btree.Ops{}); !errors.Is(err, gistdb.ErrNoSuchIndex) {
		t.Errorf("open missing: %v", err)
	}
	names, err := db.IndexNames()
	if err != nil || len(names) != 1 || names[0] != "a" {
		t.Errorf("names = %v, %v", names, err)
	}
}

func TestTwoIndexesDifferentExtensions(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	ints, _ := db.CreateIndex("ints", btree.Ops{})
	pts, _ := db.CreateIndex("points", rtree.Ops{})

	tx, _ := db.Begin()
	if _, err := ints.Insert(tx, btree.EncodeKey(7), []byte("seven")); err != nil {
		t.Fatal(err)
	}
	if _, err := pts.Insert(tx, rtree.EncodePoint(1, 2), []byte("origin-ish")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2, _ := db.Begin()
	defer tx2.Commit()
	if hits, _ := ints.Search(tx2, btree.EncodeRange(0, 10), gistdb.ReadCommitted); len(hits) != 1 {
		t.Error("btree index lost entry")
	}
	win := rtree.EncodeRect(rtree.Rect{XMin: 0, YMin: 0, XMax: 5, YMax: 5})
	if hits, _ := pts.Search(tx2, win, gistdb.ReadCommitted); len(hits) != 1 {
		t.Error("rtree index lost entry")
	}
}

func TestCrashRecoveryRoundTrip(t *testing.T) {
	db := openMem(t)
	idx, _ := db.CreateIndex("ints", btree.Ops{})
	for i := 0; i < 100; i++ {
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	// Uncommitted work that must vanish.
	loser, _ := db.Begin()
	idx.Insert(loser, btree.EncodeKey(999), []byte("phantom"))

	db2, err := db.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	idx2, err := db2.OpenIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db2.Begin()
	defer tx.Commit()
	hits, err := idx2.Search(tx, btree.EncodeRange(0, 2000), gistdb.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 100 {
		t.Fatalf("recovered %d entries, want 100", len(hits))
	}
	for _, h := range hits {
		if btree.DecodeKey(h.Key) == 999 {
			t.Error("loser key survived the crash")
		}
		if _, err := idx2.Fetch(h.RID); err != nil {
			t.Errorf("heap record %v lost: %v", h.RID, err)
		}
	}
	if rep, err := idx2.Check(); err != nil || rep.Entries != 100 {
		t.Errorf("check after recovery: %+v, %v", rep, err)
	}
}

func TestFileBackedReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := gistdb.Open(gistdb.Options{Dir: dir, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := gistdb.Open(gistdb.Options{Dir: dir, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	idx2, err := db2.OpenIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db2.Begin()
	defer tx.Commit()
	hits, err := idx2.Search(tx, btree.EncodeRange(0, 100), gistdb.ReadCommitted)
	if err != nil || len(hits) != 50 {
		t.Fatalf("reopened file db: %d hits, %v", len(hits), err)
	}
}

func TestFileBackedDirtyReopenRunsRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := gistdb.Open(gistdb.Options{Dir: dir, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := db.CreateIndex("ints", btree.Ops{})
	for i := 0; i < 30; i++ {
		tx, _ := db.Begin()
		idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("x"))
		tx.Commit()
	}
	// No Close: drop the handle, reopen the directory ("kill -9").
	db2, err := gistdb.Open(gistdb.Options{Dir: dir, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	idx2, err := db2.OpenIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db2.Begin()
	defer tx.Commit()
	hits, err := idx2.Search(tx, btree.EncodeRange(0, 100), gistdb.ReadCommitted)
	if err != nil || len(hits) != 30 {
		t.Fatalf("dirty reopen: %d hits, %v", len(hits), err)
	}
}

func TestUniqueIndexThroughFacade(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	idx, _ := db.CreateIndex("uniq", btree.Ops{})
	tx, _ := db.Begin()
	if _, err := idx.InsertUnique(tx, btree.EncodeKey(1), []byte("a")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tx2, _ := db.Begin()
	if _, err := idx.InsertUnique(tx2, btree.EncodeKey(1), []byte("b")); !errors.Is(err, gistdb.ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	tx2.Abort()
}

func TestSavepointThroughFacade(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	idx, _ := db.CreateIndex("ints", btree.Ops{})
	tx, _ := db.Begin()
	idx.Insert(tx, btree.EncodeKey(1), []byte("keep"))
	if err := tx.Savepoint("sp"); err != nil {
		t.Fatal(err)
	}
	idx.Insert(tx, btree.EncodeKey(2), []byte("drop"))
	if err := tx.RollbackTo("sp"); err != nil {
		t.Fatal(err)
	}
	idx.Insert(tx, btree.EncodeKey(3), []byte("after"))
	tx.Commit()

	tx2, _ := db.Begin()
	defer tx2.Commit()
	hits, _ := idx.Search(tx2, btree.EncodeRange(0, 10), gistdb.ReadCommitted)
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2 (keys 1 and 3)", len(hits))
	}
	for _, h := range hits {
		if k := btree.DecodeKey(h.Key); k != 1 && k != 3 {
			t.Errorf("unexpected key %d", k)
		}
	}
}

func TestDeleteAndGCThroughFacade(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	idx, _ := db.CreateIndex("ints", btree.Ops{})
	var rids []gistdb.RID
	for i := 0; i < 20; i++ {
		tx, _ := db.Begin()
		rid, _ := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("x"))
		tx.Commit()
		rids = append(rids, rid)
	}
	tx, _ := db.Begin()
	for i := 0; i < 10; i++ {
		if err := idx.Delete(tx, btree.EncodeKey(int64(i)), rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()

	gcTx, _ := db.Begin()
	if err := idx.GC(gcTx); err != nil {
		t.Fatal(err)
	}
	gcTx.Commit()

	rep, err := idx.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 10 || rep.Marked != 0 {
		t.Errorf("entries=%d marked=%d after GC", rep.Entries, rep.Marked)
	}
	if _, err := idx.Fetch(rids[0]); !errors.Is(err, gistdb.ErrNoRecord) {
		t.Errorf("deleted heap record readable: %v", err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	idx, _ := db.CreateIndex("ints", btree.Ops{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				tx, err := db.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				_, err = idx.Insert(tx, btree.EncodeKey(int64(w*1000+i)), []byte("r"))
				if err != nil {
					t.Errorf("insert: %v", err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	rep, err := idx.Check()
	if err != nil || rep.Entries != 240 {
		t.Fatalf("check: %+v, %v", rep, err)
	}
	if st := idx.TreeStats(); st.Splits == 0 {
		t.Error("expected splits")
	}
}

func TestClosedDBRefusesWork(t *testing.T) {
	db := openMem(t)
	db.Close()
	if _, err := db.Begin(); !errors.Is(err, gistdb.ErrClosed) {
		t.Errorf("Begin after close: %v", err)
	}
	if _, err := db.CreateIndex("x", btree.Ops{}); !errors.Is(err, gistdb.ErrClosed) {
		t.Errorf("CreateIndex after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestCatalogSurvivesCrash(t *testing.T) {
	db := openMem(t)
	db.CreateIndex("one", btree.Ops{})
	db.CreateIndex("two", rtree.Ops{})
	db2, err := db.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	names, err := db2.IndexNames()
	if err != nil || len(names) != 2 {
		t.Fatalf("names after crash = %v, %v", names, err)
	}
	if _, err := db2.OpenIndex("one", btree.Ops{}); err != nil {
		t.Errorf("open one: %v", err)
	}
	if _, err := db2.OpenIndex("two", rtree.Ops{}); err != nil {
		t.Errorf("open two: %v", err)
	}
}

func TestCursorSavepointRestore(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	idx, _ := db.CreateIndex("ints", btree.Ops{})
	for i := 0; i < 30; i++ {
		tx, _ := db.Begin()
		idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("x"))
		tx.Commit()
	}

	tx, _ := db.Begin()
	cur, err := idx.OpenCursor(tx, btree.EncodeRange(0, 100), gistdb.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	read := 0
	for ; read < 10; read++ {
		if _, ok, err := cur.Next(); !ok || err != nil {
			t.Fatalf("next: %v %v", ok, err)
		}
	}
	// Savepoint records the cursor position; updates after it are undone
	// and the cursor resumes where it stood.
	if err := tx.Savepoint("pos"); err != nil {
		t.Fatal(err)
	}
	idx.Insert(tx, btree.EncodeKey(500), []byte("rollback me"))
	// Read a few more past the savepoint.
	for i := 0; i < 5; i++ {
		if _, ok, err := cur.Next(); !ok || err != nil {
			t.Fatalf("post-sp next: %v %v", ok, err)
		}
	}
	if err := tx.RollbackTo("pos"); err != nil {
		t.Fatal(err)
	}
	// The cursor replays from position 10; in total we must see exactly
	// the 30 original keys (the rolled-back 500 never appears).
	rest := 0
	for {
		r, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if btree.DecodeKey(r.Key) == 500 {
			t.Error("rolled-back key visible to cursor")
		}
		rest++
	}
	if read+rest != 30 {
		t.Errorf("total keys = %d, want 30", read+rest)
	}
	tx.Commit()
}

func TestMultiIndexSharedRecords(t *testing.T) {
	// One heap record indexed by two indexes (secondary-index style via
	// IndexKey); DeleteEntry removes one index's entry while the record
	// and the other index survive.
	db := openMem(t)
	defer db.Close()
	byID, _ := db.CreateIndex("byID", btree.Ops{})
	byLoc, _ := db.CreateIndex("byLoc", rtree.Ops{})

	tx, _ := db.Begin()
	rid, err := byID.Insert(tx, btree.EncodeKey(1001), []byte("store #1001 @ (3,4)"))
	if err != nil {
		t.Fatal(err)
	}
	if err := byLoc.IndexKey(tx, rtree.EncodePoint(3, 4), rid); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2, _ := db.Begin()
	hits, _ := byLoc.Search(tx2, rtree.EncodeRect(rtree.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}), gistdb.ReadCommitted)
	if len(hits) != 1 || hits[0].RID != rid {
		t.Fatalf("spatial hits = %v", hits)
	}
	rec, err := byLoc.Fetch(hits[0].RID)
	if err != nil || string(rec) != "store #1001 @ (3,4)" {
		t.Fatalf("fetch = %q %v", rec, err)
	}
	tx2.Commit()

	// Drop only the spatial entry.
	tx3, _ := db.Begin()
	if err := byLoc.DeleteEntry(tx3, rtree.EncodePoint(3, 4), rid); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	tx4, _ := db.Begin()
	defer tx4.Commit()
	if hits, _ := byLoc.Search(tx4, rtree.EncodeRect(rtree.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}), gistdb.ReadCommitted); len(hits) != 0 {
		t.Error("spatial entry survived DeleteEntry")
	}
	if hits, _ := byID.Search(tx4, btree.EncodeRange(1001, 1001), gistdb.ReadCommitted); len(hits) != 1 {
		t.Error("primary entry lost")
	}
	if _, err := byID.Fetch(rid); err != nil {
		t.Errorf("shared record lost: %v", err)
	}
}

func TestDropIndexReclaimsPagesAndSurvivesCrash(t *testing.T) {
	db := openMem(t)
	idx, _ := db.CreateIndex("doomed", btree.Ops{})
	keep, _ := db.CreateIndex("keep", btree.Ops{})
	for i := 0; i < 100; i++ {
		tx, _ := db.Begin()
		idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("x"))
		keep.Insert(tx, btree.EncodeKey(int64(i)), []byte("y"))
		tx.Commit()
	}
	before := db.Stats()
	_ = before

	if err := db.DropIndex("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.OpenIndex("doomed", btree.Ops{}); !errors.Is(err, gistdb.ErrNoSuchIndex) {
		t.Errorf("dropped index still opens: %v", err)
	}
	names, _ := db.IndexNames()
	if len(names) != 1 || names[0] != "keep" {
		t.Errorf("names = %v", names)
	}
	if err := db.DropIndex("doomed"); !errors.Is(err, gistdb.ErrNoSuchIndex) {
		t.Errorf("double drop: %v", err)
	}

	// The drop is durable across a crash; the surviving index is intact.
	db2, err := db.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.OpenIndex("doomed", btree.Ops{}); !errors.Is(err, gistdb.ErrNoSuchIndex) {
		t.Errorf("dropped index resurrected by recovery: %v", err)
	}
	keep2, err := db2.OpenIndex("keep", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db2.Begin()
	defer tx.Commit()
	hits, err := keep2.Search(tx, btree.EncodeRange(0, 1000), gistdb.ReadCommitted)
	if err != nil || len(hits) != 100 {
		t.Fatalf("keep index: %d hits, %v", len(hits), err)
	}
	if rep, err := keep2.Check(); err != nil || rep.Entries != 100 {
		t.Errorf("keep check: %+v %v", rep, err)
	}
}

func TestDropUnopenedIndex(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	idx, _ := db.CreateIndex("cold", btree.Ops{})
	tx, _ := db.Begin()
	idx.Insert(tx, btree.EncodeKey(1), []byte("v"))
	tx.Commit()
	// Simulate "not open": drop via a second handle... easiest is a
	// crash-restart where the index was never opened.
	db2, err := db.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.DropIndex("cold"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.OpenIndex("cold", btree.Ops{}); !errors.Is(err, gistdb.ErrNoSuchIndex) {
		t.Errorf("err = %v", err)
	}
}
